//! The backward suffix search (paper §2.3–§2.4).
//!
//! Starting from the coredump, the engine repeatedly forms *predecessor
//! hypotheses* — which basic block (of which thread) executed
//! immediately before the earliest point reconstructed so far — and
//! keeps the hypotheses whose forward symbolic execution is compatible
//! with the later state. Each accepted hypothesis prepends one
//! block-granular step to the suffix; the search is depth-first with a
//! candidate-priority heuristic that prefers blocks writing memory the
//! suffix is known to read (the way a developer chases "who set this
//! value").
//!
//! Breadcrumbs (paper §2.4) prune aggressively when present: the
//! suffix's control transfers nearest the failure must match the dump's
//! LBR ring, and error-log emissions must match the retained log tail.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use mvm_core::Coredump;
use mvm_isa::{
    cfg::CallGraph,
    BlockId,
    Inst,
    Loc,
    Program,
    Reg,
    Terminator, //
};
use mvm_json::{json_enum, json_struct};
use mvm_machine::ThreadId;
use mvm_symbolic::{
    ExprRef, Model, SolveResult, SolverConfig, SolverSession, SubtreeStats, UnknownReason,
    VerdictRecord, VerdictSet,
};
use res_obs::Recorder;
use res_store::{fnv64, program_fingerprint, LoadOutcome, SolverStore};

use crate::blockexec::{run_hypothesis, EndPoint, HypSpec, Infeasible, Tagged};
use crate::hwerr::Relax;
use crate::kernel::{
    explore, Budget, CompatCheck, CompatVerdict, ExploreConfig, Finalize, Frontier, FrontierKind,
    HypothesisGen, Indexed, KernelStats, NodeScore, ParallelReport, SessionCompat, ShardedFrontier,
    SpeculativeYield, StateTransform, VerdictCollector, YieldProbe,
};
use crate::snapshot::Snapshot;
use crate::suffix::{ExecutionSuffix, SuffixStep};
use crate::symctx::{SymCtx, SymOrigin};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ResConfig {
    /// Maximum suffix length in block-granular steps.
    pub max_depth: usize,
    /// Maximum search nodes expanded.
    pub max_nodes: u64,
    /// Stop after this many complete suffixes.
    pub max_suffixes: usize,
    /// Per-hypothesis instruction budget.
    pub hyp_max_steps: u64,
    /// Cumulative solver-assignment budget for the whole search
    /// (`None` = unlimited; the solver's own per-query budget still
    /// applies).
    pub max_solver_assignments: Option<u64>,
    /// Wall-clock deadline for the whole search (`None` keeps the
    /// search fully deterministic).
    pub deadline: Option<std::time::Duration>,
    /// Exploration order; the default reproduces the engine's
    /// historical DFS byte-for-byte.
    pub frontier: FrontierKind,
    /// Speculative search workers. `1` (the default) is the plain
    /// sequential search; `N > 1` fans out N OS threads over disjoint
    /// frontier shards to warm a portable solver cache, then replays
    /// the exact sequential search over it — same suffixes, byte for
    /// byte, for any `N` (see `DESIGN.md`, "The parallel kernel").
    pub workers: usize,
    /// Speculative yield: speculative workers and the replay certify
    /// fully-explored subtrees as verdict records (see
    /// `mvm_symbolic::verdict`), and the replay *skips* subtrees
    /// certified exhausted instead of re-expanding them — same suffix
    /// bytes, superlinearly fewer replayed nodes. `false` falls back to
    /// the cache-only pipeline (workers warm the solver cache but every
    /// replay node is re-expanded) — the E3 baseline. Certification and
    /// consultation only engage under the default DFS frontier.
    pub speculative_yield: bool,
    /// Solver budgets.
    pub solver: SolverConfig,
    /// Persistent cross-run solver-result store (`res-store`). The
    /// engine absorbs the store before searching and appends every new
    /// renaming-equivariant result after each `synthesize*` call.
    /// Absorbed entries replay their original enumeration cost, so a
    /// warm run synthesizes byte-identical suffixes to a cold one.
    pub cache_path: Option<PathBuf>,
    /// Structured-tracing journal (JSONL, see `res-obs`). `None` (the
    /// default) disables tracing at near-zero cost. The recorder is
    /// strictly passive: enabling it cannot change which suffixes are
    /// found — the golden-fixture determinism gates run with it on.
    pub trace: Option<PathBuf>,
    /// Prune candidates against the dump's LBR ring.
    pub use_lbr: bool,
    /// Match only offline-underivable transfers (the §2.4 LBR filtering
    /// extension; must match how the ring was recorded).
    pub lbr_filtered: bool,
    /// Prune candidates against the dump's error-log tail.
    pub use_error_log: bool,
    /// Consider cross-thread predecessor hypotheses (schedule
    /// reconstruction).
    pub cross_thread: bool,
    /// Ablation A1: disable the `S' ⊇ Spost` over-approximation check.
    pub skip_compat_check: bool,
    /// Ablation A2: minidump mode — treat the dump's memory image as
    /// unavailable (stack and registers only).
    pub opaque_memory: bool,
    /// Minimum reconstructed history, in executed instructions, for a
    /// dead-end (cul-de-sac) suffix to count as an artifact. `0` (the
    /// default) keeps every dead end, the engine's historical
    /// behaviour. A debugger asking for "at least K instructions of
    /// history" sets this above the noise floor; search branches whose
    /// every leaf falls short then yield *nothing* — which is what
    /// makes them certifiably exhausted and skippable on a warm
    /// speculative-yield replay.
    pub min_suffix_steps: u64,
}

impl Default for ResConfig {
    fn default() -> Self {
        ResConfig {
            max_depth: 12,
            max_nodes: 4000,
            max_suffixes: 4,
            hyp_max_steps: 4096,
            max_solver_assignments: None,
            deadline: None,
            frontier: FrontierKind::Dfs,
            workers: 1,
            speculative_yield: true,
            solver: SolverConfig::default(),
            cache_path: None,
            trace: None,
            use_lbr: false,
            lbr_filtered: false,
            use_error_log: false,
            cross_thread: true,
            skip_compat_check: false,
            opaque_memory: false,
            min_suffix_steps: 0,
        }
    }
}

impl ResConfig {
    /// Starts a fluent [`ResConfigBuilder`] over the default config.
    pub fn builder() -> ResConfigBuilder {
        ResConfigBuilder::default()
    }

    /// The kernel [`Budget`] these knobs assemble into.
    pub fn budget(&self) -> Budget {
        Budget {
            max_nodes: self.max_nodes,
            hyp_max_steps: self.hyp_max_steps,
            max_solver_assignments: self.max_solver_assignments,
            deadline: self.deadline,
        }
    }
}

/// Fluent constructor for [`ResConfig`] — the supported way to deviate
/// from the defaults:
///
/// ```
/// use res_core::search::ResConfig;
/// use res_core::kernel::FrontierKind;
///
/// let config = ResConfig::builder()
///     .max_depth(8)
///     .frontier(FrontierKind::BestFirst)
///     .workers(4)
///     .use_lbr(true)
///     .build();
/// assert_eq!(config.workers, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResConfigBuilder {
    config: ResConfig,
}

impl ResConfigBuilder {
    /// Maximum suffix length in block-granular steps.
    pub fn max_depth(mut self, v: usize) -> Self {
        self.config.max_depth = v;
        self
    }

    /// Maximum search nodes expanded.
    pub fn max_nodes(mut self, v: u64) -> Self {
        self.config.max_nodes = v;
        self
    }

    /// Stop after this many complete suffixes.
    pub fn max_suffixes(mut self, v: usize) -> Self {
        self.config.max_suffixes = v;
        self
    }

    /// Per-hypothesis instruction budget.
    pub fn hyp_max_steps(mut self, v: u64) -> Self {
        self.config.hyp_max_steps = v;
        self
    }

    /// Cumulative solver-assignment budget (`None` = unlimited).
    pub fn max_solver_assignments(mut self, v: Option<u64>) -> Self {
        self.config.max_solver_assignments = v;
        self
    }

    /// Wall-clock deadline for the whole search.
    pub fn deadline(mut self, v: Option<std::time::Duration>) -> Self {
        self.config.deadline = v;
        self
    }

    /// Sets every [`Budget`] dimension at once.
    pub fn budget(mut self, b: Budget) -> Self {
        self.config.max_nodes = b.max_nodes;
        self.config.hyp_max_steps = b.hyp_max_steps;
        self.config.max_solver_assignments = b.max_solver_assignments;
        self.config.deadline = b.deadline;
        self
    }

    /// Exploration order.
    pub fn frontier(mut self, v: FrontierKind) -> Self {
        self.config.frontier = v;
        self
    }

    /// Speculative search workers (clamped to at least 1 at run time).
    pub fn workers(mut self, v: usize) -> Self {
        self.config.workers = v;
        self
    }

    /// Sets the worker count from the machine's available parallelism,
    /// clamped to `1..=8` (beyond that the speculative shards mostly
    /// duplicate work). Determinism is unaffected — speculate-then-
    /// replay returns byte-identical suffixes for any worker count.
    pub fn workers_auto(mut self) -> Self {
        self.config.workers = crate::kernel::auto_workers();
        self
    }

    /// Speculative yield: certify and skip exhausted subtrees (see
    /// [`ResConfig::speculative_yield`]). `false` gives the cache-only
    /// baseline.
    pub fn speculative_yield(mut self, v: bool) -> Self {
        self.config.speculative_yield = v;
        self
    }

    /// Solver budgets.
    pub fn solver(mut self, v: SolverConfig) -> Self {
        self.config.solver = v;
        self
    }

    /// Persistent cross-run solver-result store (see
    /// [`ResConfig::cache_path`]).
    pub fn cache_path(mut self, p: impl Into<PathBuf>) -> Self {
        self.config.cache_path = Some(p.into());
        self
    }

    /// Journal every engine phase, kernel counter, solver hit, and
    /// store event to a JSONL trace at `p` (see [`ResConfig::trace`]).
    pub fn trace(mut self, p: impl Into<PathBuf>) -> Self {
        self.config.trace = Some(p.into());
        self
    }

    /// Prune candidates against the dump's LBR ring.
    pub fn use_lbr(mut self, v: bool) -> Self {
        self.config.use_lbr = v;
        self
    }

    /// Match only offline-underivable transfers.
    pub fn lbr_filtered(mut self, v: bool) -> Self {
        self.config.lbr_filtered = v;
        self
    }

    /// Prune candidates against the dump's error-log tail.
    pub fn use_error_log(mut self, v: bool) -> Self {
        self.config.use_error_log = v;
        self
    }

    /// Consider cross-thread predecessor hypotheses.
    pub fn cross_thread(mut self, v: bool) -> Self {
        self.config.cross_thread = v;
        self
    }

    /// Ablation A1: disable the `S' ⊇ Spost` check.
    pub fn skip_compat_check(mut self, v: bool) -> Self {
        self.config.skip_compat_check = v;
        self
    }

    /// Ablation A2: minidump mode.
    pub fn opaque_memory(mut self, v: bool) -> Self {
        self.config.opaque_memory = v;
        self
    }

    /// Minimum reconstructed history, in executed instructions, for a
    /// dead-end suffix to count (see
    /// [`ResConfig::min_suffix_steps`]).
    pub fn min_suffix_steps(mut self, v: u64) -> Self {
        self.config.min_suffix_steps = v;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ResConfig {
        self.config
    }
}

/// Per-call options for [`ResEngine::synthesize_with`].
///
/// ```
/// use res_core::search::SynthOptions;
/// use res_core::hwerr::Relax;
///
/// let opts = SynthOptions::new().relax(Relax::Mem { addr: 0x1000 }).workers(2);
/// assert_eq!(opts.workers, Some(2));
/// assert_eq!(opts.relax, Relax::Mem { addr: 0x1000 });
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthOptions {
    /// Treat one dump location as unknown (the §3.2 localization probe).
    pub relax: Relax,
    /// Override the engine's configured worker count for this call.
    pub workers: Option<usize>,
    /// Override every [`Budget`] dimension for this call — the
    /// per-request admission-control hook the triage daemon uses. The
    /// engine-wide budget assembled from [`ResConfig`] applies when
    /// unset. A budget override participates in the certificate scope
    /// exactly like the engine-wide knobs: only `hyp_max_steps` is
    /// scope-relevant.
    pub budget: Option<Budget>,
    /// Override just the wall-clock deadline for this call; applied on
    /// top of `budget` (or the engine-wide budget) last, so a caller
    /// can cap latency without restating resource limits.
    pub deadline: Option<std::time::Duration>,
    /// Use a persistent store at this path for this call only,
    /// overriding any engine-level [`ResConfig::cache_path`]: absorbed
    /// before the search, new entries committed after.
    pub cache_path: Option<PathBuf>,
    /// Journal this call to a JSONL trace at this path, overriding any
    /// engine-level [`ResConfig::trace`] for the duration of the call.
    pub trace: Option<PathBuf>,
}

impl SynthOptions {
    /// The defaults: no relaxation, the engine's configured workers,
    /// budget, and store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relaxation.
    pub fn relax(mut self, relax: Relax) -> Self {
        self.relax = relax;
        self
    }

    /// Overrides the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Overrides every budget dimension for this call.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides just the wall-clock deadline for this call.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the persistent store for this call.
    pub fn cache_path(mut self, p: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(p.into());
        self
    }

    /// Journals this call to a trace at `p`.
    pub fn trace(mut self, p: impl Into<PathBuf>) -> Self {
        self.trace = Some(p.into());
        self
    }

    /// The effective [`Budget`] this call runs under, given the
    /// engine-wide `config`: the per-call override (or the engine
    /// budget), with the per-call deadline applied last.
    pub fn effective_budget(&self, config: &ResConfig) -> Budget {
        let mut b = self.budget.unwrap_or_else(|| config.budget());
        if let Some(d) = self.deadline {
            b.deadline = Some(d);
        }
        b
    }
}

/// The engine's overall verdict for a dump (paper §2.1: if no feasible
/// path exists, "the coredump is likely due to hardware failure").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// At least one feasible suffix was synthesized.
    SuffixFound,
    /// No feasible suffix exists within the explored horizon.
    NoFeasibleSuffix {
        /// `true` when every rejection was a proof (no budget cutoffs or
        /// solver Unknowns) — the basis for a hardware-error diagnosis.
        proven: bool,
    },
    /// The node budget ran out before any suffix completed.
    BudgetExhausted,
}

json_enum!(Verdict {
    SuffixFound,
    NoFeasibleSuffix { proven: bool },
    BudgetExhausted
});

/// Everything `synthesize` returns.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Suffixes found, in discovery order.
    pub suffixes: Vec<ExecutionSuffix>,
    /// Search statistics (for a sharded run: the authoritative replay).
    pub stats: KernelStats,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Speculative fan-out accounting; `None` for single-worker runs.
    pub parallel: Option<ParallelReport>,
    /// Persistent-store accounting; `None` when no store is configured.
    pub store: Option<StoreReport>,
}

/// What the persistent cross-run store contributed to (and received
/// from) one synthesis call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreReport {
    /// How the store's on-disk bytes were classified when opened. Every
    /// outcome other than [`LoadOutcome::Loaded`] means this call
    /// started cold.
    pub outcome: LoadOutcome,
    /// Entries the store held when it was opened.
    pub loaded_entries: usize,
    /// New renaming-equivariant entries this call appended.
    pub appended_entries: usize,
    /// New subtree-verdict certificates this call appended.
    pub appended_verdicts: usize,
    /// Solver queries this call answered from store-loaded entries.
    pub store_hits: u64,
    /// `false` when the post-call commit failed (I/O error) or the
    /// store is read-only (program-fingerprint mismatch); the search
    /// result itself is unaffected either way.
    pub committed: bool,
}

json_struct!(StoreReport {
    outcome,
    loaded_entries,
    appended_entries,
    appended_verdicts,
    store_hits,
    committed
});

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ThreadPos {
    depth: usize,
    loc: Loc,
    partial_done: bool,
    barrier: bool,
}

#[derive(Clone)]
struct Node {
    snap: Snapshot,
    constraints: Vec<Tagged>,
    steps_rev: Vec<SuffixStep>,
    positions: BTreeMap<ThreadId, ThreadPos>,
    suffix_allocs: usize,
    lbr_rem: usize,
    log_rem: usize,
    read_addrs: BTreeSet<u64>,
    unknown_used: bool,
    depth: usize,
}

struct Candidate {
    tid: ThreadId,
    frame_depth: usize,
    start: Loc,
    end: EndPoint,
    callee_entry_regs: Option<Vec<ExprRef>>,
    callee_ret_reg: Option<Reg>,
    pops_frame: bool,
    priority: u8,
    /// The range was truncated at a `spawn`; the thread cannot be
    /// reversed past it (spawns are backward barriers).
    barrier_after: bool,
}

/// The reverse-execution-synthesis engine for one program.
pub struct ResEngine<'p> {
    program: &'p Program,
    callgraph: CallGraph,
    config: ResConfig,
    session: SolverSession,
    /// The engine-level persistent store ([`ResConfig::cache_path`]),
    /// opened once at construction and committed to after every
    /// `synthesize*` call, so a corpus sweep over one engine shares a
    /// single load and appends incrementally.
    store: RefCell<Option<SolverStore>>,
    /// The engine-level tracing recorder ([`ResConfig::trace`];
    /// disabled when unset). Strictly passive — the search never reads
    /// it, so tracing cannot perturb which suffixes are found.
    recorder: Recorder,
}

impl<'p> ResEngine<'p> {
    /// Builds an engine (CFGs and call graph are precomputed). When the
    /// config names a [`cache_path`](ResConfig::cache_path), the store
    /// is opened (any damage degrades to a cold start, never an error)
    /// and absorbed into the solver session here. When it names a
    /// [`trace`](ResConfig::trace), a JSONL journal recorder is opened
    /// at that path.
    pub fn new(program: &'p Program, config: ResConfig) -> Self {
        let recorder = config
            .trace
            .as_ref()
            .map(Recorder::journal)
            .unwrap_or_default();
        Self::with_recorder(program, config, recorder)
    }

    /// [`new`](Self::new) with an explicit recorder — used by the
    /// speculative workers, which share (a scoped view of) the parent
    /// engine's recorder instead of opening their own journals, and by
    /// per-call trace overrides.
    fn with_recorder(program: &'p Program, config: ResConfig, recorder: Recorder) -> Self {
        let session =
            SolverSession::with_config(config.solver).with_recorder(recorder.scoped("solver"));
        let store = config.cache_path.as_ref().map(|p| {
            let _absorb = recorder.span("absorb");
            let store =
                SolverStore::open_with(p, program_fingerprint(program), recorder.scoped("store"));
            store.absorb_into(&session);
            store
        });
        ResEngine {
            program,
            callgraph: CallGraph::build(program),
            config,
            session,
            store: RefCell::new(store),
            recorder,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ResConfig {
        &self.config
    }

    /// The engine's memoizing solver session. The cache persists across
    /// `synthesize` calls — the §3.2 localization sweep, which re-solves
    /// near-identical relaxed dumps, leans on this heavily.
    pub fn session(&self) -> &SolverSession {
        &self.session
    }

    /// Synthesizes execution suffixes for a coredump.
    ///
    /// Equivalent to [`synthesize_with`](ResEngine::synthesize_with)
    /// with default [`SynthOptions`].
    pub fn synthesize(&self, dump: &Coredump) -> SynthesisResult {
        self.synthesize_with(dump, SynthOptions::new())
    }

    /// Synthesizes with one dump location treated as unknown — the §3.2
    /// hardware-error localization probe.
    ///
    /// Equivalent to [`synthesize_with`](ResEngine::synthesize_with)
    /// with only the relaxation set.
    pub fn synthesize_relaxed(&self, dump: &Coredump, relax: Relax) -> SynthesisResult {
        self.synthesize_with(dump, SynthOptions::new().relax(relax))
    }

    /// The synthesis entry point: every other `synthesize*` method is a
    /// thin wrapper over this one.
    ///
    /// With an effective worker count of 1 this is the plain sequential
    /// backward search. With `N > 1` it runs speculate-then-replay: N
    /// OS threads explore disjoint frontier shards (each with its own
    /// engine, symbol numbering, solver session, and a
    /// [`Budget::slice`]d allowance), their renaming-equivariant solver
    /// results are absorbed into this engine's session as an
    /// α-canonical cache, and then the exact sequential search replays
    /// over the warmed cache. The replay *is* the `workers = 1`
    /// algorithm — same hypotheses, same symbol ids, same budget
    /// accounting — so the returned suffixes are byte-identical for any
    /// worker count; the fan-out only changes where solver time is
    /// spent.
    pub fn synthesize_with(&self, dump: &Coredump, opts: SynthOptions) -> SynthesisResult {
        self.run_synthesis(dump, &opts, None, true)
    }

    /// [`synthesize_with`](ResEngine::synthesize_with) against a
    /// caller-owned, already-open [`SolverStore`]: the store is absorbed
    /// into this engine's session up front and new results/certificates
    /// are merged back afterwards, but **nothing is committed** — the
    /// caller decides when the accumulated state reaches disk. This is
    /// the triage daemon's hot path: one store instance stays warm
    /// across many requests and is committed only on hot-set eviction or
    /// shutdown, so per-request cost drops from open/absorb/commit to
    /// absorb-only. The returned [`StoreReport::committed`] is always
    /// `false` here.
    pub fn synthesize_in_store(
        &self,
        dump: &Coredump,
        opts: SynthOptions,
        store: &mut SolverStore,
    ) -> SynthesisResult {
        store.absorb_into(&self.session);
        self.run_synthesis(dump, &opts, Some(store), false)
    }

    fn run_synthesis(
        &self,
        dump: &Coredump,
        opts: &SynthOptions,
        mut external: Option<&mut SolverStore>,
        commit: bool,
    ) -> SynthesisResult {
        let workers = opts.workers.unwrap_or(self.config.workers).max(1);
        let budget = opts.effective_budget(&self.config);
        // A per-call trace overrides the engine-level recorder for this
        // call only — including the session's counters, which are
        // swapped and restored around the call.
        let call_recorder = opts.trace.as_ref().map(Recorder::journal);
        let recorder = call_recorder
            .clone()
            .unwrap_or_else(|| self.recorder.clone());
        let prev_session_rec = call_recorder
            .as_ref()
            .map(|r| self.session.set_recorder(r.scoped("solver")));
        let wall = std::time::Instant::now();
        let run = recorder.span("synthesize");
        recorder.gauge("workers", workers as u64);
        // A per-call store overrides the engine-level one for this call.
        // An external (caller-owned) store takes precedence over both
        // and was already absorbed by `synthesize_in_store`.
        let mut call_store = match external {
            Some(_) => None,
            None => opts.cache_path.as_ref().map(|p| {
                let _absorb = run.child("absorb");
                let store = SolverStore::open_with(
                    p,
                    program_fingerprint(self.program),
                    recorder.scoped("store"),
                );
                store.absorb_into(&self.session);
                store
            }),
        };
        let session_before = self.session.stats();
        // Speculative yield engages only under the default DFS frontier
        // (certificates name contiguous subtrees; see `kernel::verdict`).
        let scope = (self.config.speculative_yield && self.config.frontier == FrontierKind::Dfs)
            .then(|| self.verdict_scope(dump, opts.relax, budget.hyp_max_steps));
        let t_absorb = wall.elapsed();
        let mut verdicts = VerdictSet::new();
        let parallel = (workers > 1).then(|| {
            let span = run.child("speculate");
            let (report, worker_verdicts) = self.speculate(
                dump,
                opts.relax,
                workers,
                budget,
                scope,
                &recorder,
                span.id(),
            );
            verdicts = worker_verdicts;
            report
        });
        // Certificates persisted by earlier runs of the same scope.
        if let Some(scope) = scope {
            let engine_store = self.store.borrow();
            if let Some(store) = external
                .as_deref()
                .or(call_store.as_ref())
                .or(engine_store.as_ref())
            {
                for r in store.verdicts_for(scope) {
                    verdicts.insert(r.clone());
                }
            }
        }
        let verdicts_consulted = verdicts.len();
        let t_speculate = wall.elapsed() - t_absorb;
        let has_store = external.is_some() || call_store.is_some() || self.store.borrow().is_some();
        let (mut result, replay_records) = {
            let _replay = run.child("replay");
            self.replay(
                dump, opts.relax, budget, &recorder, scope, &verdicts, has_store,
            )
        };
        let t_replay = wall.elapsed() - t_speculate - t_absorb;
        let (skipped_subtrees, skipped_nodes) =
            (result.stats.skipped_subtrees, result.stats.skipped.nodes);
        result.parallel = parallel.map(|mut p| {
            p.verdicts_consulted = verdicts_consulted;
            p.replay_skipped_subtrees = skipped_subtrees;
            p.replay_skipped_nodes = skipped_nodes;
            p
        });
        result.store = {
            let _commit = run.child("commit");
            // Replay-certified records first (they subsume the worker
            // records that survived the replay), then workers' and prior
            // runs' leftovers — the store dedups by (scope, path).
            let mut to_persist = replay_records;
            to_persist.extend(verdicts.records().cloned());
            self.export_to_store(
                external.take().or(call_store.as_mut()),
                session_before.store_hits,
                &to_persist,
                commit,
            )
        };
        let t_commit = wall.elapsed() - t_replay - t_speculate - t_absorb;
        drop(run);
        recorder.finish();
        if let Some(prev) = prev_session_rec {
            self.session.set_recorder(prev);
        }
        if recorder.enabled() {
            // The common case should not need journal post-processing:
            // one line with the headline numbers. Hit attribution is
            // the replay session's delta — memo (exact in-session),
            // worker (speculative absorb), store (cross-run).
            let s = self.session.stats().delta_since(&session_before);
            eprintln!(
                "res-trace: nodes={} suffixes={} verdict={:?} \
                 hits memo={} worker={} store={} \
                 wall absorb={}ms speculate={}ms replay={}ms commit={}ms",
                result.stats.nodes_expanded,
                result.suffixes.len(),
                result.verdict,
                s.cache_hits - s.absorbed_hits,
                s.absorbed_hits - s.store_hits,
                s.store_hits,
                t_absorb.as_millis(),
                t_speculate.as_millis(),
                t_replay.as_millis(),
                t_commit.as_millis(),
            );
        }
        result
    }

    /// Fingerprint of the (coredump, tree-shaping configuration) pair
    /// that subtree-verdict certificates are valid for. Budgets and
    /// artifact caps are deliberately excluded: a certificate states
    /// what a *full* exploration of the subtree yields, and collection
    /// aborts its open frames whenever a budget (or the artifact cap)
    /// stops the search, so certified content is budget-independent.
    /// The program itself needs no component — the store is already
    /// keyed by program fingerprint. `hyp_max_steps` is the one budget
    /// dimension in scope (it shapes which hypotheses survive), so the
    /// *effective* per-call value is what gets fingerprinted.
    fn verdict_scope(&self, dump: &Coredump, relax: Relax, hyp_max_steps: u64) -> u64 {
        let c = &self.config;
        let image = format!(
            "{}|{:?}|{}|{}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}",
            mvm_json::to_string(dump),
            relax,
            c.max_depth,
            hyp_max_steps,
            c.solver,
            c.use_lbr,
            c.lbr_filtered,
            c.use_error_log,
            c.cross_thread,
            c.skip_compat_check,
            c.opaque_memory,
            c.min_suffix_steps,
            c.frontier.name(),
        );
        fnv64(image.as_bytes())
    }

    /// After a search: feed hit counts back to the active store, merge
    /// the session's new renaming-equivariant results and this run's
    /// verdict certificates, and — unless `commit` is deferred to the
    /// caller (the `synthesize_in_store` hot path) — commit.
    fn export_to_store(
        &self,
        call_store: Option<&mut SolverStore>,
        store_hits_before: u64,
        verdicts: &[VerdictRecord],
        commit: bool,
    ) -> Option<StoreReport> {
        let mut engine_store = self.store.borrow_mut();
        let store = call_store.or(engine_store.as_mut())?;
        let store_hits = self.session.stats().store_hits - store_hits_before;
        let outcome = store.load_report().outcome;
        let loaded_entries = store.load_report().entries_loaded;
        store.note_hits(store_hits);
        let appended_entries = store.merge(&self.session.export_portable());
        let appended_verdicts = store.merge_verdicts(verdicts);
        let committed = commit && !store.read_only() && store.commit().is_ok();
        Some(StoreReport {
            outcome,
            loaded_entries,
            appended_entries,
            appended_verdicts,
            store_hits,
            committed,
        })
    }

    /// Phase 1 of a sharded run: fan out `workers` speculative threads,
    /// fold their stats, absorb their portable solver caches into this
    /// engine's session, and collect their subtree-verdict certificates
    /// for the replay to consult.
    fn speculate(
        &self,
        dump: &Coredump,
        relax: Relax,
        workers: usize,
        budget: Budget,
        scope: Option<u64>,
        recorder: &Recorder,
        speculate_span: Option<u64>,
    ) -> (ParallelReport, VerdictSet) {
        // The worker threads must not capture `self` (the session's
        // interior mutability is single-threaded); they get the shared
        // immutable program plus a config clone and build their own
        // engines. They do share the recorder (it is thread-safe),
        // each under its own `speculate.wN` scope.
        let program = self.program;
        let verdict_scope = scope;
        let results: Vec<(KernelStats, mvm_symbolic::PortableCache)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        // Per-call budget overrides propagate into the
                        // workers via their config clones; `run_shard`
                        // slices whatever it finds there.
                        let mut config = self.config.clone();
                        config.max_nodes = budget.max_nodes;
                        config.hyp_max_steps = budget.hyp_max_steps;
                        config.max_solver_assignments = budget.max_solver_assignments;
                        config.deadline = budget.deadline;
                        let worker_rec = recorder.scoped(&format!("speculate.w{w}"));
                        scope.spawn(move || {
                            let _span = worker_rec.span_under("shard", speculate_span);
                            let engine = ResEngine::with_recorder(program, config, worker_rec);
                            engine.run_shard(dump, relax, w, workers, verdict_scope)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("speculative worker panicked"))
                    .collect()
            });
        let mut report = ParallelReport {
            workers,
            ..ParallelReport::default()
        };
        let mut verdicts = VerdictSet::new();
        for (stats, cache) in &results {
            report.per_worker_nodes.push(stats.nodes_expanded);
            report.per_worker_verdicts.push(cache.verdicts.len());
            report.speculative.absorb(stats);
            self.session.absorb(cache);
            for r in &cache.verdicts {
                verdicts.insert(r.clone());
            }
        }
        report.cache_entries = self.session.absorbed_len();
        recorder.gauge("speculate.cache_entries", report.cache_entries as u64);
        if verdict_scope.is_some() {
            recorder.gauge("speculate.verdicts", verdicts.len() as u64);
        }
        (report, verdicts)
    }

    /// One speculative worker: the deterministic search over this
    /// worker's frontier shard, discarding artifacts (they are built
    /// from worker-local symbol ids) and exporting the portable slice
    /// of the solver cache plus the worker's subtree-verdict
    /// certificates. With a `scope`, the worker also consults
    /// certificates persisted by earlier runs — skipping a
    /// known-exhausted subtree frees its budget slice for unexplored
    /// territory.
    fn run_shard(
        &self,
        dump: &Coredump,
        relax: Relax,
        worker: usize,
        workers: usize,
        scope: Option<u64>,
    ) -> (KernelStats, mvm_symbolic::PortableCache) {
        let mut stats = KernelStats::default();
        let mut frontier = ShardedFrontier::new(self.config.frontier.build(), worker, workers);
        let mut collector = scope.map(|s| VerdictCollector::for_worker(s, worker as u32));
        let store_verdicts = scope.and_then(|s| {
            let store = self.store.borrow();
            store
                .as_ref()
                .map(|st| {
                    let mut set = VerdictSet::new();
                    for r in st.verdicts_for(s) {
                        set.insert(r.clone());
                    }
                    set
                })
                .filter(|v| !v.is_empty())
        });
        let _ = self.explore_with(
            dump,
            relax,
            self.config.budget().slice(workers),
            &mut frontier,
            &mut stats,
            &self.recorder,
            SpeculativeYield {
                consult: store_verdicts.as_ref(),
                collector: collector.as_mut(),
            },
        );
        let mut cache = self.session.export_portable();
        if let Some(c) = collector {
            let records = c.into_records();
            let exhausted = records
                .iter()
                .filter(|r| r.kind == mvm_symbolic::VerdictKind::Exhausted)
                .count();
            // Scoped per worker: `speculate.wN.verdicts.*`.
            self.recorder
                .counter("verdicts.exported", records.len() as u64);
            self.recorder
                .counter("verdicts.exhausted", exhausted as u64);
            cache.verdicts = records;
        }
        (stats, cache)
    }

    /// Phase 2 (and the whole of a single-worker run): the exact
    /// sequential search. Consults `verdicts` to skip certified-
    /// exhausted subtrees, and — when a store will receive them
    /// (`collect`) — re-certifies subtrees it fully explores itself.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &self,
        dump: &Coredump,
        relax: Relax,
        budget: Budget,
        recorder: &Recorder,
        scope: Option<u64>,
        verdicts: &VerdictSet,
        collect: bool,
    ) -> (SynthesisResult, Vec<VerdictRecord>) {
        let mut stats = KernelStats::default();
        let mut frontier = self.config.frontier.build();
        let mut collector = scope.filter(|_| collect).map(VerdictCollector::for_replay);
        let consult = (scope.is_some() && !verdicts.is_empty()).then_some(verdicts);
        let suffixes = self.explore_with(
            dump,
            relax,
            budget,
            frontier.as_mut(),
            &mut stats,
            recorder,
            SpeculativeYield {
                consult,
                collector: collector.as_mut(),
            },
        );
        if stats.skipped_subtrees > 0 {
            recorder.counter("replay.skipped.subtrees", stats.skipped_subtrees);
            recorder.counter("replay.skipped.nodes", stats.skipped.nodes);
            recorder.counter("replay.skipped.hypotheses", stats.skipped.hypotheses);
        }
        let records = collector
            .map(VerdictCollector::into_records)
            .unwrap_or_default();
        // The verdict reasons over *effective* totals (actual work plus
        // certified skipped accounting), so a verdict-pruned run reaches
        // the same proven/approximate conclusion as a full replay.
        let eff = stats.effective();
        let verdict = if !suffixes.is_empty() {
            Verdict::SuffixFound
        } else if stats.cut.is_some() {
            Verdict::BudgetExhausted
        } else {
            Verdict::NoFeasibleSuffix {
                proven: eff.rejected_budget == 0
                    && eff.unknown_accepted == 0
                    && eff.finalize_failed == 0,
            }
        };
        (
            SynthesisResult {
                suffixes,
                stats,
                verdict,
                parallel: None,
                store: None,
            },
            records,
        )
    }

    /// Runs the kernel exploration from `dump`'s root node through the
    /// given frontier under `budget`, attributing solver-session deltas
    /// to `stats`.
    fn explore_with(
        &self,
        dump: &Coredump,
        relax: Relax,
        budget: Budget,
        frontier: &mut dyn Frontier<Indexed<Node>>,
        stats: &mut KernelStats,
        recorder: &Recorder,
        yld: SpeculativeYield<'_>,
    ) -> Vec<ExecutionSuffix> {
        let mut ctx = SymCtx::new();
        let root = self.build_root(dump, relax, &mut ctx);
        let session_before = self.session.stats();
        let mut driver = SearchDriver {
            engine: self,
            dump,
            ctx,
            assignments_before: session_before.assignments,
            hyp_max_steps: budget.hyp_max_steps,
        };
        let explore_config = ExploreConfig {
            budget,
            max_depth: self.config.max_depth,
            max_artifacts: self.config.max_suffixes,
        };
        let suffixes = explore(
            &mut driver,
            root,
            &explore_config,
            frontier,
            stats,
            &recorder.scoped("kernel"),
            yld,
        );
        stats.solver = self.session.stats().delta_since(&session_before);
        suffixes
    }

    /// Builds the search root: the coredump's state with the configured
    /// relaxation applied.
    fn build_root(&self, dump: &Coredump, relax: Relax, ctx: &mut SymCtx) -> Node {
        let mut snap = Snapshot::from_coredump(dump);
        if self.config.opaque_memory {
            snap.set_opaque_base(true);
        }
        let mut positions = BTreeMap::new();
        for t in &dump.threads {
            let depth = t.frames.len() - 1;
            let loc = t.pc();
            // A partial range that would be empty after spawn truncation
            // leaves the thread already done (and unable to go further).
            let blk = self.program.func(loc.func).block(loc.block);
            let has_spawn_before = blk.insts[..(loc.inst as usize).min(blk.insts.len())]
                .iter()
                .any(|i| matches!(i, Inst::Spawn { .. }));
            let empty_after_spawn = has_spawn_before
                && self.spawn_adjusted_start(loc.func, loc.block, loc.inst).0 >= loc.inst;
            positions.insert(
                t.tid,
                ThreadPos {
                    depth,
                    loc,
                    partial_done: loc.inst == 0 || empty_after_spawn,
                    barrier: empty_after_spawn,
                },
            );
        }
        match relax {
            Relax::None => {}
            Relax::Mem { addr } => {
                let sym = ctx.fresh(SymOrigin::HavocMem {
                    addr,
                    width: mvm_isa::Width::W8,
                    depth: 0,
                });
                snap.write_mem(addr, mvm_isa::Width::W8, sym);
            }
            Relax::Reg { reg } => {
                let tid = dump.faulting_tid;
                let depth = positions[&tid].depth;
                let sym = ctx.fresh(SymOrigin::HavocReg { tid, reg, depth: 0 });
                snap.set_reg(tid, depth, reg, sym);
            }
        }
        Node {
            snap,
            constraints: Vec::new(),
            steps_rev: Vec::new(),
            positions,
            suffix_allocs: 0,
            lbr_rem: dump.lbr.len(),
            log_rem: dump.error_log.len(),
            read_addrs: BTreeSet::new(),
            unknown_used: false,
            depth: 0,
        }
    }

    fn enumerate(&self, node: &Node, dump: &Coredump) -> Vec<Candidate> {
        let mut out = Vec::new();
        // The very first backward step must reverse the faulting
        // thread's partial block — the latest range of the execution.
        if node.depth == 0 {
            let tid = dump.faulting_tid;
            let pos = node.positions[&tid];
            if !pos.partial_done {
                out.extend(self.partial_candidate(tid, pos));
                return out;
            }
        }
        let last_tid = node.steps_rev.last().map(|s| s.tid);
        for (&tid, pos) in &node.positions {
            if pos.barrier {
                continue;
            }
            if !self.config.cross_thread && tid != dump.faulting_tid {
                continue;
            }
            if !pos.partial_done {
                out.extend(self.partial_candidate(tid, *pos));
                continue;
            }
            debug_assert_eq!(pos.loc.inst, 0);
            let func = pos.loc.func;
            let cfg = self.callgraph.cfg(func);
            for &p in cfg.preds(pos.loc.block) {
                let blk_len = self.program.func(func).block(p).insts.len() as u32;
                let (start_inst, barrier_after) = self.spawn_adjusted_start(func, p, blk_len);
                let start = Loc {
                    func,
                    block: p,
                    inst: start_inst,
                };
                let priority = self.priority(node, tid, last_tid, func, p);
                out.push(Candidate {
                    tid,
                    frame_depth: pos.depth,
                    start,
                    end: EndPoint {
                        depth_delta: 0,
                        loc: pos.loc,
                    },
                    callee_entry_regs: None,
                    callee_ret_reg: None,
                    pops_frame: false,
                    priority,
                    barrier_after,
                });
            }
            // Backward past the function entry, via the dump's stack.
            if pos.loc.block == BlockId(0) && pos.depth > 0 {
                let t = node.snap.thread(tid).expect("thread in snapshot");
                let caller = &t.frames[pos.depth - 1];
                let callee_frame = &t.frames[pos.depth];
                let caller_func = self.program.func(caller.func);
                for (bid, block) in caller_func.iter_blocks() {
                    if let Terminator::Call { func: cf, cont, .. } = &block.terminator {
                        if *cf == func && *cont == caller.block {
                            let blk_len =
                                self.program.func(caller.func).block(bid).insts.len() as u32;
                            let (start_inst, barrier_after) =
                                self.spawn_adjusted_start(caller.func, bid, blk_len);
                            out.push(Candidate {
                                tid,
                                frame_depth: pos.depth - 1,
                                start: Loc {
                                    func: caller.func,
                                    block: bid,
                                    inst: start_inst,
                                },
                                end: EndPoint {
                                    depth_delta: 1,
                                    loc: pos.loc,
                                },
                                callee_entry_regs: Some(callee_frame.regs.clone()),
                                callee_ret_reg: callee_frame.ret_reg,
                                pops_frame: true,
                                priority: 1,
                                barrier_after,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Start instruction for a range over `block`, truncated past the
    /// last `spawn` among the first `end_inst` instructions. Spawns are
    /// backward barriers for the block-granular engine.
    fn spawn_adjusted_start(
        &self,
        func: mvm_isa::FuncId,
        block: BlockId,
        end_inst: u32,
    ) -> (u32, bool) {
        let blk = self.program.func(func).block(block);
        let upto = (end_inst as usize).min(blk.insts.len());
        let last_spawn = blk.insts[..upto]
            .iter()
            .rposition(|i| matches!(i, Inst::Spawn { .. }));
        match last_spawn {
            Some(j) => (j as u32 + 1, true),
            None => (0, false),
        }
    }

    fn partial_candidate(&self, tid: ThreadId, pos: ThreadPos) -> Option<Candidate> {
        let (start_inst, barrier_after) =
            self.spawn_adjusted_start(pos.loc.func, pos.loc.block, pos.loc.inst);
        if start_inst >= pos.loc.inst {
            // The partial range is empty (fault right after a spawn).
            return None;
        }
        Some(Candidate {
            tid,
            frame_depth: pos.depth,
            start: Loc {
                func: pos.loc.func,
                block: pos.loc.block,
                inst: start_inst,
            },
            end: EndPoint {
                depth_delta: 0,
                loc: pos.loc,
            },
            callee_entry_regs: None,
            callee_ret_reg: None,
            pops_frame: false,
            priority: 0,
            barrier_after,
        })
    }

    /// Candidate ordering: 0 is best. Blocks that store to globals the
    /// suffix has read explain mystery values — explore them first.
    fn priority(
        &self,
        node: &Node,
        tid: ThreadId,
        last_tid: Option<ThreadId>,
        func: mvm_isa::FuncId,
        block: BlockId,
    ) -> u8 {
        if self.block_stores_read_global(node, func, block) {
            return 0;
        }
        if Some(tid) == last_tid {
            1
        } else {
            2
        }
    }

    fn block_stores_read_global(&self, node: &Node, func: mvm_isa::FuncId, block: BlockId) -> bool {
        if node.read_addrs.is_empty() {
            return false;
        }
        let blk = self.program.func(func).block(block);
        let mut has_store = false;
        let mut touched: Vec<(u64, u64)> = Vec::new();
        for i in &blk.insts {
            match i {
                Inst::Store { .. } => has_store = true,
                Inst::AddrOf { global, .. } => {
                    let g = self.program.global(*global);
                    touched.push((g.addr, g.size.max(8)));
                }
                _ => {}
            }
        }
        if !has_store || touched.is_empty() {
            return false;
        }
        node.read_addrs.iter().any(|&a| {
            touched
                .iter()
                .any(|&(base, size)| a >= base && a < base + size)
        })
    }

    fn try_candidate(
        &self,
        node: &Node,
        cand: &Candidate,
        dump: &Coredump,
        ctx: &mut SymCtx,
        hyp_max_steps: u64,
        stats: &mut KernelStats,
    ) -> Option<Node> {
        let base: Vec<ExprRef> = node.constraints.iter().map(|t| t.expr.clone()).collect();
        let spost_regs = node
            .snap
            .thread(cand.tid)
            .expect("thread in snapshot")
            .frames[cand.frame_depth]
            .regs
            .clone();
        let spec = HypSpec {
            program: self.program,
            tid: cand.tid,
            frame_depth: cand.frame_depth,
            start: cand.start,
            end: cand.end,
            spost_regs,
            callee_entry_regs: cand.callee_entry_regs.clone(),
            callee_ret_reg: cand.callee_ret_reg,
            dump_allocs: &dump.heap_allocs,
            later_allocs: node.suffix_allocs,
            base_constraints: &base,
            max_steps: hyp_max_steps,
            skip_compat: self.config.skip_compat_check,
        };
        let outcome = match run_hypothesis(&spec, &node.snap, ctx, &self.session, node.depth) {
            Ok(o) => o,
            Err(Infeasible::Structural(_) | Infeasible::SpawnBarrier) => {
                stats.rejected_structural += 1;
                return None;
            }
            Err(Infeasible::Unsat | Infeasible::HeapMismatch | Infeasible::MixedAliasing) => {
                stats.rejected_exec += 1;
                return None;
            }
            Err(Infeasible::Budget(_)) => {
                stats.rejected_budget += 1;
                return None;
            }
        };

        // Breadcrumb pruning.
        let mut lbr_rem = node.lbr_rem;
        if self.config.use_lbr && lbr_rem > 0 {
            let relevant: Vec<_> = outcome
                .transfers
                .iter()
                .filter(|t| !self.config.lbr_filtered || !t.inferrable)
                .collect();
            let m = relevant.len().min(lbr_rem);
            let dump_slice = &dump.lbr[lbr_rem - m..lbr_rem];
            let mine = &relevant[relevant.len() - m..];
            for (entry, tr) in dump_slice.iter().zip(mine.iter()) {
                if entry.tid != cand.tid || entry.from != tr.from || entry.to != tr.to {
                    stats.rejected_lbr += 1;
                    return None;
                }
            }
            lbr_rem -= m;
        }
        let mut log_rem = node.log_rem;
        let mut log_constraints: Vec<Tagged> = Vec::new();
        if self.config.use_error_log && !outcome.logs.is_empty() {
            let k = outcome.logs.len();
            let m = k.min(log_rem);
            let dump_slice = &dump.error_log[log_rem - m..log_rem];
            let mine = &outcome.logs[k - m..];
            for (entry, (site, expr)) in dump_slice.iter().zip(mine.iter()) {
                if entry.tid != cand.tid || entry.at != *site {
                    stats.rejected_log += 1;
                    return None;
                }
                let c = mvm_symbolic::Expr::bin(
                    mvm_isa::BinOp::Eq,
                    expr.clone(),
                    mvm_symbolic::Expr::konst(entry.value),
                );
                match c.as_const() {
                    Some(0) => {
                        stats.rejected_log += 1;
                        return None;
                    }
                    Some(_) => {}
                    None => log_constraints.push(Tagged {
                        expr: c,
                        tag: crate::blockexec::Tag::Path,
                    }),
                }
            }
            log_rem -= m;
        }

        // Global satisfiability check (the paper's S' ⊇ Spost test over
        // the whole accumulated constraint set).
        let mut all = base;
        all.extend(outcome.constraints.iter().map(|t| t.expr.clone()));
        all.extend(log_constraints.iter().map(|t| t.expr.clone()));
        let mut unknown = outcome.unknown_used;
        match SessionCompat::new(&self.session).compatible(&all) {
            CompatVerdict::Compatible => {}
            CompatVerdict::Incompatible => {
                stats.rejected_solver += 1;
                return None;
            }
            CompatVerdict::Undecided(reason) => {
                unknown = true;
                stats.unknown_accepted += 1;
                match reason {
                    UnknownReason::BudgetExhausted => stats.unknown_accepted_budget += 1,
                    UnknownReason::Incomplete => stats.unknown_accepted_incomplete += 1,
                }
            }
        }
        stats.accepted += 1;

        // Build the child node.
        let mut snap = node.snap.clone();
        if cand.pops_frame {
            snap.pop_frame(cand.tid);
        }
        {
            let t = snap.thread_mut(cand.tid).expect("thread in snapshot");
            t.frames[cand.frame_depth].regs = outcome.spre_regs.clone();
        }
        for (addr, width, sym) in &outcome.spre_cells {
            snap.write_mem(*addr, *width, sym.clone());
        }
        let mut constraints = node.constraints.clone();
        constraints.extend(outcome.constraints.iter().cloned());
        constraints.extend(log_constraints);
        let mut positions = node.positions.clone();
        positions.insert(
            cand.tid,
            ThreadPos {
                depth: cand.frame_depth,
                loc: cand.start,
                partial_done: true,
                barrier: cand.barrier_after,
            },
        );
        // A thread parked at its function's entry with no caller frame
        // and no loop back-edge cannot go further back.
        if cand.start.block == BlockId(0) && cand.start.inst == 0 && cand.frame_depth == 0 {
            let has_loop_pred = !self
                .callgraph
                .cfg(cand.start.func)
                .preds(BlockId(0))
                .is_empty();
            if !has_loop_pred {
                positions.get_mut(&cand.tid).unwrap().barrier = true;
            }
        }
        let mut read_addrs = node.read_addrs.clone();
        for (a, _) in &outcome.reads {
            if read_addrs.len() < 512 {
                read_addrs.insert(*a);
            }
        }
        let input_kinds = outcome
            .inputs
            .iter()
            .map(|&s| match ctx.origin(s) {
                Some(SymOrigin::Input { kind, .. }) => *kind,
                _ => mvm_isa::InputKind::Env,
            })
            .collect();
        let mut steps_rev = node.steps_rev.clone();
        steps_rev.push(SuffixStep {
            tid: cand.tid,
            frame_depth: cand.frame_depth,
            start: cand.start,
            end: cand.end,
            transfers: outcome.transfers.clone(),
            inputs: outcome.inputs.clone(),
            input_kinds,
            allocs: outcome.allocs,
            frees: outcome.frees.clone(),
            reads: outcome.reads.clone(),
            writes: outcome.writes.clone(),
            steps: outcome.steps,
        });
        Some(Node {
            snap,
            constraints,
            steps_rev,
            positions,
            suffix_allocs: node.suffix_allocs + outcome.allocs,
            lbr_rem,
            log_rem,
            read_addrs,
            unknown_used: node.unknown_used || unknown,
            depth: node.depth + 1,
        })
    }

    fn finalize(
        &self,
        node: &Node,
        ctx: &SymCtx,
        stats: &mut KernelStats,
    ) -> Option<ExecutionSuffix> {
        if node.steps_rev.is_empty() {
            return None;
        }
        // Too little reconstructed history to be worth reporting: a
        // late rejection, so branches whose every leaf falls short
        // yield no artifact at all (and certify as exhausted under
        // speculative yield).
        if self.config.min_suffix_steps > 0 {
            let executed: u64 = node.steps_rev.iter().map(|s| s.steps).sum();
            if executed < self.config.min_suffix_steps {
                stats.finalize_failed += 1;
                return None;
            }
        }
        let exprs: Vec<ExprRef> = node.constraints.iter().map(|t| t.expr.clone()).collect();
        let (model, approximate) = match self.session.check(&exprs) {
            SolveResult::Sat(m) => (m, node.unknown_used),
            SolveResult::Unknown(_) => (Model::new(), true),
            SolveResult::Unsat => {
                stats.finalize_failed += 1;
                return None;
            }
        };
        let steps: Vec<SuffixStep> = node.steps_rev.iter().rev().cloned().collect();
        // Concretize the suffix-start snapshot.
        let mut initial_cells = Vec::new();
        for (addr, cell) in node.snap.cells() {
            let v = model.eval_total(&cell.expr).unwrap_or(0);
            initial_cells.push((addr, cell.width, v));
        }
        let mut initial_regs = BTreeMap::new();
        let mut start_positions = BTreeMap::new();
        for (&tid, pos) in &node.positions {
            let t = node.snap.thread(tid).expect("thread in snapshot");
            let regs: Vec<u64> = t.frames[pos.depth]
                .regs
                .iter()
                .map(|e| model.eval_total(e).unwrap_or(0))
                .collect();
            initial_regs.insert(tid, (pos.depth, regs));
            start_positions.insert(tid, (pos.depth, pos.loc));
        }
        // Inputs in forward per-thread order.
        let mut inputs: BTreeMap<ThreadId, Vec<u64>> = BTreeMap::new();
        for s in &steps {
            for sym in &s.inputs {
                let v = model.get_or_zero(*sym);
                inputs.entry(s.tid).or_default().push(v);
            }
        }
        let _ = ctx;
        Some(ExecutionSuffix {
            steps,
            model,
            initial_cells,
            initial_regs,
            start_positions,
            inputs,
            constraints: node.constraints.clone(),
            approximate,
        })
    }
}

/// Adapter wiring the RES backward search into the kernel seams: the
/// engine's candidate enumeration is the hypothesis generator, havoc +
/// forward symbolic execution (plus breadcrumb pruning and the global
/// compatibility check) is the state transform, and suffix completion
/// is the finalizer.
struct SearchDriver<'e, 'p, 'd> {
    engine: &'e ResEngine<'p>,
    dump: &'d Coredump,
    ctx: SymCtx,
    assignments_before: u64,
    /// The effective per-hypothesis instruction budget for this run
    /// (per-call overrides land here, not in the engine config).
    hyp_max_steps: u64,
}

impl HypothesisGen for SearchDriver<'_, '_, '_> {
    type Node = Node;
    type Candidate = Candidate;

    fn generate(&mut self, node: &Node) -> Vec<Candidate> {
        self.engine.enumerate(node, self.dump)
    }
}

impl StateTransform for SearchDriver<'_, '_, '_> {
    fn transform(
        &mut self,
        node: &Node,
        cand: &Candidate,
        stats: &mut KernelStats,
    ) -> Option<(NodeScore, Node)> {
        let child = self.engine.try_candidate(
            node,
            cand,
            self.dump,
            &mut self.ctx,
            self.hyp_max_steps,
            stats,
        )?;
        let crumbs_matched =
            (self.dump.lbr.len() - child.lbr_rem) + (self.dump.error_log.len() - child.log_rem);
        let score = NodeScore {
            priority: cand.priority,
            depth: child.depth,
            crumbs_matched,
        };
        Some((score, child))
    }

    fn solver_spent(&self) -> u64 {
        self.engine.session.assignments_spent() - self.assignments_before
    }

    fn yield_probe(&self) -> YieldProbe {
        let s = self.engine.session.stats();
        YieldProbe {
            assignments: s.assignments,
            private_results: s.private_results,
            syms: self.ctx.len() as u64,
        }
    }

    fn on_subtree_skipped(&mut self, skipped: &SubtreeStats) {
        // Reserve the symbol ids the skipped subtree would have minted:
        // without this, every symbol introduced after the skip would be
        // numbered differently from the full sequential run, and
        // probe-seeded (non-equivariant) solver answers downstream could
        // change the suffix bytes.
        self.ctx.advance(skipped.syms);
    }
}

impl Finalize for SearchDriver<'_, '_, '_> {
    type Artifact = ExecutionSuffix;

    fn depth(&self, node: &Node) -> usize {
        node.depth
    }

    fn finalize(&mut self, node: &Node, stats: &mut KernelStats) -> Option<ExecutionSuffix> {
        self.engine.finalize(node, &self.ctx, stats)
    }
}
