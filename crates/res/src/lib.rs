//! # Reverse execution synthesis (RES)
//!
//! `res-core` implements the central contribution of *"Automated
//! Debugging for Arbitrarily Long Executions"* (HotOS'13): given a
//! program `P` and a coredump `C` — and **nothing recorded at runtime** —
//! synthesize the *suffix* of a feasible execution that drives `P` into
//! the state captured by `C`, deterministically replayable in a
//! debugger.
//!
//! The pipeline mirrors the paper's §2:
//!
//! 1. **Symbolic snapshots** ([`snapshot`]) — a hypothesis of program
//!    state prior to a candidate predecessor block: a mix of concrete
//!    values (backed by the coredump) and unconstrained symbolic values
//!    for everything the candidate block overwrites (§2.3).
//! 2. **Backward block stepping** ([`blockexec`], [`search`]) — navigate
//!    the CFG backward from the failure PC; for each candidate
//!    predecessor, build `Spre` by havocking the block's write set,
//!    execute the block *forward* symbolically, and keep the candidate
//!    only if the result is compatible with the post-state
//!    (`S' ⊇ Spost`, §2.4). Thread interleavings are reconstructed at
//!    basic-block granularity, assuming sequential consistency (the
//!    paper's §4 prototype makes the same assumption).
//! 3. **Suffix artifacts and replay** ([`suffix`], [`replay`]) — a
//!    satisfying model concretizes the earliest snapshot into a partial
//!    memory image `Mi`, the inferred inputs, and the thread schedule;
//!    the replayer "slips an environment underneath the debugger"
//!    (§2.1), instantiates `Mi`, pins the schedule, and reproduces the
//!    exact fault.
//! 4. **Analyses on top** ([`rootcause`], [`hwerr`], [`debugaid`]) — the
//!    paper's three use cases: root-cause extraction for triaging
//!    (§3.1), hardware-error verdicts for dumps no feasible execution
//!    explains (§3.2), and debugging aids (read/write sets, state
//!    queries, §3.3).

pub mod blockexec;
pub mod debugaid;
pub mod hwerr;
pub mod kernel;
pub mod replay;
pub mod rootcause;
pub mod search;
pub mod snapshot;
pub mod suffix;
pub mod symctx;

pub use hwerr::{hardware_verdict, hardware_verdict_in_store, HwKind, HwVerdict, Relax};
pub use kernel::{
    auto_workers, parallel_map, AbandonedSpace, Budget, CutReason, EnumPath, FrontierKind,
    KernelStats, NodeScore, ParallelReport, ShardedFrontier, SpeculativeYield, VerdictCollector,
};
pub use replay::{
    replay_observed, replay_suffix, Divergence, DivergenceKind, ObservedEvent, ReplayReport,
};
pub use rootcause::{analyze_root_cause, RootCause};
pub use search::{
    ResConfig, ResConfigBuilder, ResEngine, StoreReport, SynthOptions, SynthesisResult, Verdict,
};
pub use snapshot::Snapshot;
pub use suffix::{ExecutionSuffix, SuffixStep};
pub use symctx::{SymCtx, SymOrigin};
