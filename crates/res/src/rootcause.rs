//! Root-cause extraction from a synthesized suffix (paper §3.1).
//!
//! The suffix is replayed with full tracing; the trace — which covers
//! exactly the window the paper argues contains the root cause — is
//! scanned by per-bug-class analyzers: lockset-based data-race
//! detection, read/intruder-write/use atomicity-violation patterns,
//! free-then-touch use-after-free chains, overflow attribution, and
//! semantic-assertion diagnosis. The resulting [`RootCause`] carries a
//! *bucket key* that is stable across failure sites — the property that
//! lets RES triage reports by cause rather than by call stack.

use std::collections::{HashMap, HashSet};

use mvm_core::Coredump;
use mvm_isa::{Loc, Program};
use mvm_machine::{AccessKind, Fault, ThreadId, TraceEvent, TraceLevel};

use crate::replay::replay_with_trace;
use crate::suffix::ExecutionSuffix;

/// The diagnosed root cause of a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootCause {
    /// Two threads accessed `addr` without a common lock, at least one
    /// writing.
    DataRace {
        /// The contended address.
        addr: u64,
        /// The racing writer.
        writer_tid: ThreadId,
        /// The racing write site.
        write_loc: Loc,
        /// The other access's thread.
        other_tid: ThreadId,
        /// The other access site.
        other_loc: Loc,
    },
    /// A read/use pair of one thread was split by another thread's
    /// write.
    AtomicityViolation {
        /// The shared address.
        addr: u64,
        /// The interrupted thread.
        victim_tid: ThreadId,
        /// The victim's first access site.
        read_loc: Loc,
        /// The intruding thread.
        intruder_tid: ThreadId,
        /// The intruding write site.
        write_loc: Loc,
    },
    /// An out-of-bounds access.
    BufferOverflow {
        /// Faulting address.
        addr: u64,
        /// The overflowing access site.
        access_loc: Loc,
        /// `true` if the suffix consumed attacker-controlled input
        /// (exploitability signal, §3.1).
        attacker_tainted: bool,
    },
    /// A touch of freed memory; the free is inside the suffix.
    UseAfterFree {
        /// Faulting address.
        addr: u64,
        /// The freeing site (if the free is inside the window).
        free_loc: Option<Loc>,
        /// The faulting access site.
        access_loc: Loc,
    },
    /// A block freed twice.
    DoubleFree {
        /// The first free's site, if in the window.
        first_free_loc: Option<Loc>,
        /// The faulting (second) free site.
        second_free_loc: Loc,
    },
    /// An assertion failed for a non-concurrency reason.
    SemanticBug {
        /// The assertion message.
        msg: String,
        /// The assertion site.
        assert_loc: Loc,
    },
    /// Threads blocked on each other's mutexes.
    Deadlock {
        /// The mutexes in the cycle, ascending.
        mutexes: Vec<u64>,
    },
    /// Division by zero.
    DivByZero {
        /// The division site.
        loc: Loc,
    },
    /// A consumer used a shared location before its producer (another
    /// thread whose pending code writes it) initialized it.
    OrderViolation {
        /// The shared address read too early.
        addr: u64,
        /// The consuming (faulting) thread.
        victim_tid: ThreadId,
        /// The thread whose pending write never arrived.
        pending_tid: ThreadId,
        /// The premature use site.
        use_loc: Loc,
    },
    /// No analyzer matched.
    Unknown,
}

impl RootCause {
    /// A stable triaging key: identical for failures with the same root
    /// cause, regardless of where the failure manifested (the paper's
    /// answer to WER's call-stack buckets, §3.1).
    pub fn bucket_key(&self) -> String {
        match self {
            RootCause::DataRace {
                write_loc,
                other_loc,
                ..
            } => {
                // Order-normalize the two sites so either manifestation
                // buckets identically.
                let (a, b) = if write_loc <= other_loc {
                    (write_loc, other_loc)
                } else {
                    (other_loc, write_loc)
                };
                format!("race:{a}:{b}")
            }
            RootCause::AtomicityViolation {
                read_loc,
                write_loc,
                ..
            } => {
                format!("av:{read_loc}:{write_loc}")
            }
            RootCause::BufferOverflow { access_loc, .. } => format!("overflow:{access_loc}"),
            RootCause::UseAfterFree {
                free_loc,
                access_loc,
                ..
            } => match free_loc {
                Some(f) => format!("uaf:{f}"),
                None => format!("uaf:?:{access_loc}"),
            },
            RootCause::DoubleFree {
                first_free_loc,
                second_free_loc,
            } => match first_free_loc {
                Some(f) => format!("dfree:{f}:{second_free_loc}"),
                None => format!("dfree:?:{second_free_loc}"),
            },
            RootCause::SemanticBug { msg, assert_loc } => format!("assert:{assert_loc}:{msg}"),
            RootCause::Deadlock { mutexes } => {
                let parts: Vec<String> = mutexes.iter().map(|m| format!("{m:#x}")).collect();
                format!("deadlock:{}", parts.join(","))
            }
            RootCause::DivByZero { loc } => format!("divzero:{loc}"),
            RootCause::OrderViolation { addr, use_loc, .. } => {
                format!("order:{use_loc}:{addr:#x}")
            }
            RootCause::Unknown => "unknown".to_string(),
        }
    }

    /// `true` for concurrency root causes.
    pub fn is_concurrency(&self) -> bool {
        matches!(
            self,
            RootCause::DataRace { .. }
                | RootCause::AtomicityViolation { .. }
                | RootCause::Deadlock { .. }
                | RootCause::OrderViolation { .. }
        )
    }
}

/// Analyzes a synthesized suffix: replays it with full tracing and runs
/// the per-class analyzers against the observed window.
pub fn analyze_root_cause(
    program: &Program,
    dump: &Coredump,
    suffix: &ExecutionSuffix,
) -> RootCause {
    let (report, machine) = replay_with_trace(program, dump, suffix, TraceLevel::Full);
    let events = machine.tracer().events();
    let fault_pc = dump.fault_pc();

    match &dump.fault {
        Fault::Deadlock { threads } => {
            let mut mutexes: Vec<u64> = threads
                .iter()
                .filter_map(|t| match dump.thread(*t).map(|x| x.status) {
                    Some(mvm_machine::ThreadStatus::BlockedOnLock(m)) => Some(m),
                    _ => None,
                })
                .collect();
            // The faulting thread blocks at replay time; its mutex comes
            // from the machine.
            if let Some(mvm_machine::ThreadStatus::BlockedOnLock(m)) =
                machine.threads().get(&dump.faulting_tid).map(|t| t.status)
            {
                mutexes.push(m);
            }
            mutexes.sort_unstable();
            mutexes.dedup();
            return RootCause::Deadlock { mutexes };
        }
        Fault::AssertFailed { msg } => {
            // A failed assertion over shared state is usually a
            // concurrency symptom: look for a race on the asserted data.
            if let Some(rc) = find_race(events, dump) {
                return rc;
            }
            return RootCause::SemanticBug {
                msg: msg.clone(),
                assert_loc: fault_pc,
            };
        }
        Fault::UseAfterFree { addr, base, .. } => {
            let free_loc = events.iter().find_map(|e| match e {
                TraceEvent::Free { loc, base: b, .. } if b == base => Some(*loc),
                _ => None,
            });
            return RootCause::UseAfterFree {
                addr: *addr,
                free_loc,
                access_loc: fault_pc,
            };
        }
        Fault::DoubleFree { base } => {
            let first_free_loc = events.iter().find_map(|e| match e {
                TraceEvent::Free { loc, base: b, .. } if b == base => Some(*loc),
                _ => None,
            });
            return RootCause::DoubleFree {
                first_free_loc,
                second_free_loc: fault_pc,
            };
        }
        Fault::HeapOverflow { addr, .. } | Fault::InvalidAccess { addr, .. } => {
            // Concurrency can also produce wild accesses (e.g. a racing
            // null/pointer overwrite); prefer the race explanation when
            // present.
            if let Some(rc) = find_race(events, dump) {
                return rc;
            }
            return RootCause::BufferOverflow {
                addr: *addr,
                access_loc: fault_pc,
                attacker_tainted: suffix.consumes_attacker_input(),
            };
        }
        Fault::DivByZero => {
            if let Some(rc) = find_race(events, dump) {
                return rc;
            }
            if let Some(rc) = find_order_violation(program, dump, events) {
                return rc;
            }
            return RootCause::DivByZero { loc: fault_pc };
        }
        _ => {}
    }
    let _ = report;
    RootCause::Unknown
}

/// Order-violation detection: the faulting thread's last read hit a
/// shared location that another live thread's *pending* code (from its
/// dump position onward, statically) writes — the producer had not run
/// yet.
fn find_order_violation(
    program: &Program,
    dump: &Coredump,
    events: &[TraceEvent],
) -> Option<RootCause> {
    let victim = dump.faulting_tid;
    // Last read by the faulting thread.
    let (use_loc, addr) = events.iter().rev().find_map(|e| match e {
        TraceEvent::Mem {
            tid,
            loc,
            kind: AccessKind::Read,
            addr,
            ..
        } if *tid == victim => Some((*loc, *addr)),
        _ => None,
    })?;
    // Does some other, non-halted thread still have a store to the
    // containing global ahead of it? (Static scan of its current
    // function: AddrOf-of-the-global plus any store.)
    let (_, global) = program.global_at(addr)?;
    for t in &dump.threads {
        if t.tid == victim || t.status == mvm_machine::ThreadStatus::Halted {
            continue;
        }
        let func = program.func(t.pc().func);
        let mut names_global = false;
        let mut stores = false;
        for b in &func.blocks {
            for i in &b.insts {
                match i {
                    mvm_isa::Inst::AddrOf { global: g, .. }
                        if program.global(*g).addr == global.addr =>
                    {
                        names_global = true;
                    }
                    mvm_isa::Inst::Store { .. } => stores = true,
                    _ => {}
                }
            }
        }
        // The spawn argument may also carry the address.
        let arg_is_global = t
            .frames
            .first()
            .is_some_and(|f| f.regs.first().is_some_and(|&r| r == global.addr));
        if stores && (names_global || arg_is_global) {
            return Some(RootCause::OrderViolation {
                addr,
                victim_tid: victim,
                pending_tid: t.tid,
                use_loc,
            });
        }
    }
    None
}

/// Lockset + interleaving analysis over the replay trace.
///
/// Finds (a) write/access pairs on the same address from different
/// threads with no common lock held — a data race — preferring the pair
/// nearest the failure, and (b) read ... intruder-write ... use patterns
/// — an atomicity violation. An AV is reported when the victim re-
/// accesses the address after the intruder's write; otherwise the bare
/// race is reported.
fn find_race(events: &[TraceEvent], dump: &Coredump) -> Option<RootCause> {
    let mut locks_held: HashMap<ThreadId, HashSet<u64>> = HashMap::new();
    // (tid, loc, kind, locks) per access, in order.
    let mut accesses: Vec<(ThreadId, Loc, AccessKind, u64, HashSet<u64>)> = Vec::new();
    for e in events {
        match e {
            TraceEvent::Sync {
                tid,
                mutex,
                acquire,
                ..
            } => {
                let set = locks_held.entry(*tid).or_default();
                if *acquire {
                    set.insert(*mutex);
                } else {
                    set.remove(mutex);
                }
            }
            TraceEvent::Mem {
                tid,
                loc,
                kind,
                addr,
                ..
            } => {
                let held = locks_held.get(tid).cloned().unwrap_or_default();
                accesses.push((*tid, *loc, *kind, *addr, held));
            }
            _ => {}
        }
    }
    // Atomicity violation: victim access A1(addr), intruder write W(addr),
    // victim access A2(addr), no common lock between victim and intruder.
    let mut best_av: Option<RootCause> = None;
    let mut best_race: Option<RootCause> = None;
    for (i, (t1, l1, _, addr, held1)) in accesses.iter().enumerate() {
        for (t2, l2, k2, addr2, held2) in accesses.iter().skip(i + 1) {
            if addr != addr2 || t1 == t2 {
                continue;
            }
            if held1.intersection(held2).next().is_some() {
                continue;
            }
            let one_writes = *k2 == AccessKind::Write || accesses[i].2 == AccessKind::Write;
            if !one_writes {
                continue;
            }
            // Race candidate; check for the victim re-access (AV).
            let intruder_writes = *k2 == AccessKind::Write;
            if intruder_writes {
                let reuse = accesses
                    .iter()
                    .skip(i + 1)
                    .find(|(t3, _, _, a3, _)| t3 == t1 && a3 == addr);
                if let Some((_, l3, _, _, _)) = reuse {
                    let _ = l3;
                    best_av = Some(RootCause::AtomicityViolation {
                        addr: *addr,
                        victim_tid: *t1,
                        read_loc: *l1,
                        intruder_tid: *t2,
                        write_loc: *l2,
                    });
                }
            }
            let (writer_tid, write_loc, other_tid, other_loc) = if intruder_writes {
                (*t2, *l2, *t1, *l1)
            } else {
                (*t1, *l1, *t2, *l2)
            };
            best_race = Some(RootCause::DataRace {
                addr: *addr,
                writer_tid,
                write_loc,
                other_tid,
                other_loc,
            });
        }
    }
    let _ = dump;
    best_av.or(best_race)
}
