//! Symbolic snapshots (paper §2.3).
//!
//! A [`Snapshot`] is "an image of P's memory state in which some
//! locations do not have concrete values, but rather have stand-ins for
//! any possible value". Concretely: the coredump's memory is the
//! immutable concrete backing (shared behind an [`Rc`]), and a sparse
//! overlay of *cells* holds the symbolic expressions introduced by
//! havocking and by symbolic execution of candidate blocks. Register
//! files are symbolic per frame, per thread.
//!
//! Memory cells are keyed by `(address, width)` of the program's own
//! accesses. Mixed-width aliasing of the *same* bytes by concrete and
//! symbolic cells is resolved when all overlapping cells are concrete;
//! overlap involving a symbolic cell is reported to the caller, which
//! treats the hypothesis conservatively (see `DESIGN.md` §4).

use std::collections::BTreeMap;
use std::rc::Rc;

use mvm_core::Coredump;
use mvm_isa::{BlockId, FuncId, Loc, Reg, Width};
use mvm_machine::{Memory, ThreadId};
use mvm_symbolic::{Expr, ExprRef};

/// One symbolic memory cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Access width the cell was written with.
    pub width: Width,
    /// Value expression.
    pub expr: ExprRef,
}

/// A register file snapshot for one frame.
#[derive(Debug, Clone)]
pub struct FrameSnap {
    /// Function of the frame.
    pub func: FuncId,
    /// Block recorded in the dump (for parked callers this is the call's
    /// continuation block).
    pub block: BlockId,
    /// Instruction index recorded in the dump.
    pub inst: u32,
    /// Register expressions.
    pub regs: Vec<ExprRef>,
    /// Caller register receiving the return value, if any.
    pub ret_reg: Option<Reg>,
}

impl FrameSnap {
    /// The frame's code location.
    pub fn loc(&self) -> Loc {
        Loc {
            func: self.func,
            block: self.block,
            inst: self.inst,
        }
    }
}

/// Per-thread snapshot: the dump's frame stack with symbolic registers.
#[derive(Debug, Clone)]
pub struct ThreadSnap {
    /// Thread id.
    pub tid: ThreadId,
    /// Frames, outermost first (as in the dump).
    pub frames: Vec<FrameSnap>,
}

/// The result of a symbolic memory read.
#[derive(Debug, Clone)]
pub enum MemRead {
    /// A well-defined expression.
    Value(ExprRef),
    /// The read overlaps a symbolic cell with a different extent; the
    /// caller must treat the value as unknown.
    MixedSymbolic,
}

/// A symbolic program-state snapshot over a coredump backing.
#[derive(Debug, Clone)]
pub struct Snapshot {
    base: Rc<Memory>,
    cells: BTreeMap<u64, Cell>,
    threads: BTreeMap<ThreadId, ThreadSnap>,
    /// When set, base memory is *unknown* rather than concrete — the
    /// A2 "minidump mode" (stack and registers only, no memory image).
    opaque_base: bool,
}

impl Snapshot {
    /// Builds the fully concrete base-case snapshot from a coredump
    /// (`Spost` is "initialized with a copy of the coredump C", §2.4).
    pub fn from_coredump(dump: &Coredump) -> Self {
        let mut threads = BTreeMap::new();
        for t in &dump.threads {
            threads.insert(
                t.tid,
                ThreadSnap {
                    tid: t.tid,
                    frames: t
                        .frames
                        .iter()
                        .map(|f| FrameSnap {
                            func: f.func,
                            block: f.block,
                            inst: f.inst,
                            regs: f.regs.iter().map(|&v| Expr::konst(v)).collect(),
                            ret_reg: f.ret_reg,
                        })
                        .collect(),
                },
            );
        }
        Snapshot {
            base: Rc::new(dump.memory.clone()),
            cells: BTreeMap::new(),
            threads,
            opaque_base: false,
        }
    }

    /// Switches the snapshot to minidump mode: reads not covered by an
    /// overlay cell return unknown instead of the dump's bytes
    /// (experiment A2 — what forward execution synthesis had to work
    /// with).
    pub fn set_opaque_base(&mut self, opaque: bool) {
        self.opaque_base = opaque;
    }

    /// The concrete backing memory.
    pub fn base(&self) -> &Memory {
        &self.base
    }

    /// The symbolic overlay cells, in address order.
    pub fn cells(&self) -> impl Iterator<Item = (u64, &Cell)> {
        self.cells.iter().map(|(&a, c)| (a, c))
    }

    /// Number of overlay cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// All thread snapshots.
    pub fn threads(&self) -> impl Iterator<Item = &ThreadSnap> {
        self.threads.values()
    }

    /// One thread's snapshot.
    pub fn thread(&self, tid: ThreadId) -> Option<&ThreadSnap> {
        self.threads.get(&tid)
    }

    /// Mutable thread access.
    pub fn thread_mut(&mut self, tid: ThreadId) -> Option<&mut ThreadSnap> {
        self.threads.get_mut(&tid)
    }

    /// Reads register `r` of the frame at `depth` of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the thread or frame does not exist; search positions
    /// are derived from the same snapshot and are always valid.
    pub fn reg(&self, tid: ThreadId, depth: usize, r: Reg) -> ExprRef {
        self.threads[&tid].frames[depth].regs[r.index()].clone()
    }

    /// Writes register `r` of the frame at `depth` of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the thread or frame does not exist.
    pub fn set_reg(&mut self, tid: ThreadId, depth: usize, r: Reg, e: ExprRef) {
        self.threads.get_mut(&tid).unwrap().frames[depth].regs[r.index()] = e;
    }

    /// Overlay cells overlapping `[addr, addr+width)`.
    fn overlapping(&self, addr: u64, width: Width) -> Vec<(u64, Cell)> {
        let lo = addr.saturating_sub(7);
        let hi = addr + width.bytes() - 1;
        self.cells
            .range(lo..=hi)
            .filter(|(&a, c)| {
                let a_end = a + c.width.bytes() - 1;
                a <= hi && a_end >= addr
            })
            .map(|(&a, c)| (a, c.clone()))
            .collect()
    }

    /// Reads memory symbolically.
    pub fn read_mem(&self, addr: u64, width: Width) -> MemRead {
        if let Some(c) = self.cells.get(&addr) {
            if c.width == width {
                return MemRead::Value(c.expr.clone());
            }
        }
        let overlap = self.overlapping(addr, width);
        if overlap.is_empty() {
            if self.opaque_base {
                return MemRead::MixedSymbolic;
            }
            return MemRead::Value(Expr::konst(self.base.read(addr, width)));
        }
        if self.opaque_base {
            return MemRead::MixedSymbolic;
        }
        // All overlapping cells concrete: materialize bytes over the
        // backing and read through.
        if overlap.iter().all(|(_, c)| c.expr.as_const().is_some()) {
            let mut bytes = [0u8; 8];
            let n = width.bytes() as usize;
            for (i, b) in bytes.iter_mut().enumerate().take(n) {
                *b = self.base.read_byte(addr + i as u64).unwrap_or(0);
            }
            for (a, c) in &overlap {
                let v = c.expr.as_const().unwrap();
                for i in 0..c.width.bytes() {
                    let byte_addr = a + i;
                    if byte_addr >= addr && byte_addr < addr + width.bytes() {
                        bytes[(byte_addr - addr) as usize] = (v >> (8 * i)) as u8;
                    }
                }
            }
            let mut out = 0u64;
            for (i, b) in bytes.iter().enumerate().take(n) {
                out |= (*b as u64) << (8 * i);
            }
            return MemRead::Value(Expr::konst(out));
        }
        MemRead::MixedSymbolic
    }

    /// Writes a memory cell, evicting any overlapping cells (their bytes
    /// are superseded; partial survivors would need byte surgery, which
    /// the engine avoids by treating mixed overlap conservatively on
    /// read).
    pub fn write_mem(&mut self, addr: u64, width: Width, expr: ExprRef) {
        let stale: Vec<u64> = self
            .overlapping(addr, width)
            .into_iter()
            .map(|(a, _)| a)
            .collect();
        for a in stale {
            self.cells.remove(&a);
        }
        self.cells.insert(addr, Cell { width, expr });
    }

    /// Drops the innermost frame of a thread (backward step past a
    /// function entry: reversal continues in the caller).
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist or has no frames.
    pub fn pop_frame(&mut self, tid: ThreadId) -> FrameSnap {
        self.threads
            .get_mut(&tid)
            .unwrap()
            .frames
            .pop()
            .expect("pop on frameless thread")
    }

    /// Symbols appearing anywhere in the snapshot (registers of live
    /// frames and overlay cells).
    pub fn live_symbols(&self) -> std::collections::BTreeSet<mvm_symbolic::SymId> {
        let mut out = std::collections::BTreeSet::new();
        for t in self.threads.values() {
            for f in &t.frames {
                for r in &f.regs {
                    out.extend(r.symbols());
                }
            }
        }
        for c in self.cells.values() {
            out.extend(c.expr.symbols());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_isa::asm::assemble;
    use mvm_machine::{Machine, MachineConfig};

    fn dump() -> Coredump {
        let p = assemble(
            "global g 16 = 77\nfunc main() {\nentry:\n  addr r0, g\n  load r1, [r0]\n  assert 0, \"x\"\n  halt\n}",
        )
        .unwrap();
        let mut m = Machine::new(p, MachineConfig::default());
        m.run();
        Coredump::capture(&m)
    }

    #[test]
    fn base_case_is_fully_concrete() {
        let d = dump();
        let s = Snapshot::from_coredump(&d);
        assert_eq!(s.cell_count(), 0);
        let g = mvm_isa::layout::GLOBAL_BASE;
        let MemRead::Value(v) = s.read_mem(g, Width::W8) else {
            panic!("mixed")
        };
        assert_eq!(v.as_const(), Some(77));
        // Registers reflect the dump.
        let r1 = s.reg(0, 0, Reg(1));
        assert_eq!(r1.as_const(), Some(77));
        assert!(s.live_symbols().is_empty());
    }

    #[test]
    fn overlay_shadows_base() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        let g = mvm_isa::layout::GLOBAL_BASE;
        s.write_mem(g, Width::W8, Expr::sym(0));
        let MemRead::Value(v) = s.read_mem(g, Width::W8) else {
            panic!("mixed")
        };
        assert_eq!(v.as_sym(), Some(0));
        assert_eq!(s.live_symbols().len(), 1);
    }

    #[test]
    fn exact_width_required_for_symbolic_cells() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        let g = mvm_isa::layout::GLOBAL_BASE;
        s.write_mem(g, Width::W8, Expr::sym(0));
        assert!(matches!(s.read_mem(g, Width::W4), MemRead::MixedSymbolic));
        assert!(matches!(
            s.read_mem(g + 4, Width::W8),
            MemRead::MixedSymbolic
        ));
    }

    #[test]
    fn concrete_overlap_materializes() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        let g = mvm_isa::layout::GLOBAL_BASE;
        // Overwrite one byte concretely; a W8 read must merge it with
        // the base.
        s.write_mem(g, Width::W1, Expr::konst(0xaa));
        let MemRead::Value(v) = s.read_mem(g, Width::W8) else {
            panic!("mixed")
        };
        assert_eq!(v.as_const(), Some((77 & !0xff) | 0xaa));
    }

    #[test]
    fn write_evicts_overlapping_cells() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        let g = mvm_isa::layout::GLOBAL_BASE;
        s.write_mem(g, Width::W1, Expr::sym(0));
        s.write_mem(g, Width::W8, Expr::konst(5));
        let MemRead::Value(v) = s.read_mem(g, Width::W8) else {
            panic!("mixed")
        };
        assert_eq!(v.as_const(), Some(5));
        assert_eq!(s.cell_count(), 1);
    }

    #[test]
    fn unrelated_cells_do_not_interfere() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        let g = mvm_isa::layout::GLOBAL_BASE;
        s.write_mem(g, Width::W8, Expr::sym(0));
        s.write_mem(g + 8, Width::W8, Expr::sym(1));
        assert!(matches!(s.read_mem(g, Width::W8), MemRead::Value(_)));
        assert!(matches!(s.read_mem(g + 8, Width::W8), MemRead::Value(_)));
        assert_eq!(s.cell_count(), 2);
    }

    #[test]
    fn register_updates_are_per_frame() {
        let d = dump();
        let mut s = Snapshot::from_coredump(&d);
        s.set_reg(0, 0, Reg(5), Expr::sym(9));
        assert_eq!(s.reg(0, 0, Reg(5)).as_sym(), Some(9));
        assert!(s.reg(0, 0, Reg(6)).as_const().is_some());
    }
}
