//! # proptest-mini — a seeded, shrinking property-test harness
//!
//! A std-only replacement for the `proptest` dependency, built on
//! [`mvm_prng`] so that every generated case is a pure function of a
//! single master seed. Where `proptest` persists failing cases in
//! regression files, this harness makes the seed itself the artifact:
//! a failure panics with the master seed and the case index, and
//! re-running with `RES_PROP_SEED=<seed>` regenerates the identical
//! counterexample — on any machine, with no state files.
//!
//! # Example
//!
//! ```
//! use proptest_mini::{check, u64_range, Config};
//!
//! check(
//!     "addition_commutes",
//!     &Config::with_cases(64),
//!     &proptest_mini::pair(u64_range(0, 1000), u64_range(0, 1000)),
//!     |&(a, b)| {
//!         proptest_mini::prop_assert_eq!(a + b, b + a);
//!         Ok(())
//!     },
//! );
//! ```
//!
//! # Shrinking
//!
//! On failure the harness shrinks greedily: it repeatedly tries the
//! candidate simplifications of the current counterexample (integers
//! move toward their lower bound, vectors lose elements) and commits to
//! the first candidate that still fails, until no candidate fails or
//! the shrink budget is exhausted. The panic message reports both the
//! original and the minimized input.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use mvm_prng::{SplitMix64, Xoshiro256StarStar};

/// Environment variable naming the master seed for reproduction.
pub const SEED_ENV: &str = "RES_PROP_SEED";

/// Master seed used when [`SEED_ENV`] is not set.
pub const DEFAULT_SEED: u64 = 0x5e5_0f_7e57_5eed;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate and check.
    pub cases: u32,
    /// Master seed; every case seed derives from it.
    pub seed: u64,
    /// Maximum number of shrink candidates evaluated after a failure.
    pub max_shrink_steps: u32,
}

impl Config {
    /// The default configuration: 256 cases (proptest's default count),
    /// seed from [`SEED_ENV`] or [`DEFAULT_SEED`].
    pub fn new() -> Self {
        Config {
            cases: 256,
            seed: env_seed(),
            max_shrink_steps: 4096,
        }
    }

    /// The default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::new()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new()
    }
}

/// Reads the master seed from the environment (decimal or `0x…` hex),
/// falling back to [`DEFAULT_SEED`].
pub fn env_seed() -> u64 {
    let Ok(raw) = std::env::var(SEED_ENV) else {
        return DEFAULT_SEED;
    };
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => seed,
        Err(_) => panic!("{SEED_ENV} must be a decimal or 0x-hex u64, got {raw:?}"),
    }
}

/// A reusable value generator with an attached shrinker.
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut Xoshiro256StarStar) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a sampling function and a shrinker.
    pub fn new(
        generate: impl Fn(&mut Xoshiro256StarStar) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            generate: Rc::new(generate),
            shrink: Rc::new(shrink),
        }
    }

    /// Samples one value.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> T {
        (self.generate)(rng)
    }

    /// Candidate simplifications of a failing value.
    pub fn shrinks(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value. The mapped generator does not shrink
    /// (there is no inverse to shrink through).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let inner = self.generate;
        Gen::new(move |rng| f(inner(rng)), |_| Vec::new())
    }
}

fn shrink_u64_toward(lo: u64, v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2;
        if mid != lo && mid != v {
            out.push(mid);
        }
        out.push(v - 1);
    }
    out.dedup();
    out
}

/// Any `u64`, shrinking toward 0.
pub fn any_u64() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64(), |&v| shrink_u64_toward(0, v))
}

/// Any `u8`, shrinking toward 0.
pub fn any_u8() -> Gen<u8> {
    Gen::new(
        |rng| rng.next_u64() as u8,
        |&v| {
            shrink_u64_toward(0, v as u64)
                .into_iter()
                .map(|v| v as u8)
                .collect()
        },
    )
}

/// A `u64` in `lo..hi` (half-open, like a proptest range), shrinking
/// toward `lo`.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn u64_range(lo: u64, hi: u64) -> Gen<u64> {
    assert!(lo < hi, "empty range {lo}..{hi}");
    Gen::new(
        move |rng| rng.next_in(lo, hi - 1),
        move |&v| shrink_u64_toward(lo, v),
    )
}

/// A `u32` in `lo..hi`, shrinking toward `lo`.
pub fn u32_range(lo: u32, hi: u32) -> Gen<u32> {
    u64_range(lo as u64, hi as u64).map(|v| v as u32)
}

/// A `usize` in `lo..hi`, shrinking toward `lo`.
pub fn usize_range(lo: usize, hi: usize) -> Gen<usize> {
    assert!(lo < hi, "empty range {lo}..{hi}");
    Gen::new(
        move |rng| rng.next_in(lo as u64, (hi - 1) as u64) as usize,
        move |&v| {
            shrink_u64_toward(lo as u64, v as u64)
                .into_iter()
                .map(|v| v as usize)
                .collect()
        },
    )
}

/// A vector of `len ∈ min_len..max_len` elements (half-open), shrinking
/// by dropping elements (never below `min_len`) and by shrinking
/// individual elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len < max_len, "empty length range {min_len}..{max_len}");
    let elem2 = elem.clone();
    Gen::new(
        move |rng| {
            let len = rng.next_in(min_len as u64, (max_len - 1) as u64) as usize;
            (0..len).map(|_| elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            // Structural shrinks: halve, drop one end.
            if v.len() / 2 >= min_len && v.len() / 2 < v.len() {
                out.push(v[..v.len() / 2].to_vec());
            }
            if v.len() > min_len {
                out.push(v[1..].to_vec());
                out.push(v[..v.len() - 1].to_vec());
            }
            // Element-wise shrinks.
            for (i, item) in v.iter().enumerate() {
                for cand in elem2.shrinks(item) {
                    let mut copy = v.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        },
    )
}

/// A pair of independent values; shrinks each component.
pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (sa, sb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (a.sample(rng), b.sample(rng)),
        move |(va, vb)| {
            let mut out = Vec::new();
            out.extend(sa.shrinks(va).into_iter().map(|x| (x, vb.clone())));
            out.extend(sb.shrinks(vb).into_iter().map(|x| (va.clone(), x)));
            out
        },
    )
}

/// A triple of independent values; shrinks each component.
pub fn triple<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    let (sa, sb, sc) = (a.clone(), b.clone(), c.clone());
    Gen::new(
        move |rng| (a.sample(rng), b.sample(rng), c.sample(rng)),
        move |(va, vb, vc)| {
            let mut out = Vec::new();
            out.extend(
                sa.shrinks(va)
                    .into_iter()
                    .map(|x| (x, vb.clone(), vc.clone())),
            );
            out.extend(
                sb.shrinks(vb)
                    .into_iter()
                    .map(|x| (va.clone(), x, vc.clone())),
            );
            out.extend(
                sc.shrinks(vc)
                    .into_iter()
                    .map(|x| (va.clone(), vb.clone(), x)),
            );
            out
        },
    )
}

/// The outcome of running a property on one value: `Ok` to pass, or a
/// message describing the violation.
pub type PropResult = Result<(), String>;

fn run_prop<T>(prop: &impl Fn(&T) -> PropResult, value: &T) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Checks a property over `cfg.cases` generated values.
///
/// # Panics
///
/// Panics with a reproduction recipe (master seed, case index, original
/// and shrunk counterexample) on the first failing case.
pub fn check<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> PropResult,
) {
    for case in 0..cfg.cases {
        let case_seed = SplitMix64::mix(cfg.seed, case as u64);
        let mut rng = Xoshiro256StarStar::new(case_seed);
        let value = gen.sample(&mut rng);
        let Err(error) = run_prop(&prop, &value) else {
            continue;
        };
        // Greedy shrink: commit to the first candidate that still
        // fails; stop when no candidate fails or the budget runs out.
        let original = format!("{value:?}");
        let mut current = value;
        let mut current_error = error;
        let mut budget = cfg.max_shrink_steps;
        'shrinking: while budget > 0 {
            for cand in gen.shrinks(&current) {
                if budget == 0 {
                    break 'shrinking;
                }
                budget -= 1;
                if let Err(e) = run_prop(&prop, &cand) {
                    current = cand;
                    current_error = e;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!(
            "\n[proptest-mini] property '{name}' failed on case {case}/{cases}\n  \
             master seed: {seed:#x}   (reproduce with {env}={seed:#x})\n  \
             case seed:   {case_seed:#x}\n  \
             minimal input: {current:?}\n  \
             original input: {original}\n  \
             error: {err}\n",
            cases = cfg.cases,
            seed = cfg.seed,
            env = SEED_ENV,
            err = current_error,
        );
    }
}

/// Asserts a condition inside a property, returning `Err` (not
/// panicking) so the harness can shrink.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, returning `Err` with both values
/// on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left:  {:?}\n  right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("tautology", &Config::with_cases(50), &any_u64(), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        ran += counter.get();
        assert_eq!(ran, 50);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let gen = vec_of(any_u64(), 1, 16);
        let collect = |seed| {
            let mut out = Vec::new();
            for case in 0..20u64 {
                let mut rng = Xoshiro256StarStar::new(SplitMix64::mix(seed, case));
                out.push(gen.sample(&mut rng));
            }
            out
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn failure_panics_with_seed_and_shrunk_input() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "fails_above_100",
                &Config {
                    cases: 200,
                    seed: 99,
                    max_shrink_steps: 4096,
                },
                &u64_range(0, 1_000_000),
                |&v| {
                    prop_assert!(v <= 100, "{v} > 100");
                    Ok(())
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("fails_above_100"), "{msg}");
        assert!(msg.contains("master seed: 0x63"), "{msg}");
        assert!(msg.contains(SEED_ENV), "{msg}");
        // Greedy shrinking must reach the boundary counterexample.
        assert!(msg.contains("minimal input: 101"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "index_panic",
                &Config {
                    cases: 50,
                    seed: 7,
                    max_shrink_steps: 4096,
                },
                &vec_of(any_u8(), 1, 32),
                |v| {
                    // Panics (rather than returning Err) on long inputs.
                    assert!(v.len() < 3, "too long");
                    Ok(())
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panic"), "{msg}");
        // Shrinks to the minimal failing length of 3.
        assert!(msg.contains("minimal input: [0, 0, 0]"), "{msg}");
    }

    #[test]
    fn range_generators_respect_bounds() {
        let gen = triple(u64_range(10, 20), usize_range(0, 5), u32_range(3, 4));
        let mut rng = Xoshiro256StarStar::new(0);
        for _ in 0..500 {
            let (a, b, c) = gen.sample(&mut rng);
            assert!((10..20).contains(&a));
            assert!(b < 5);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn vec_shrinks_respect_min_len() {
        let gen = vec_of(any_u8(), 2, 8);
        let shrinks = gen.shrinks(&vec![5, 6, 7]);
        assert!(!shrinks.is_empty());
        assert!(shrinks.iter().all(|s| s.len() >= 2));
    }
}
