//! The daemon's live telemetry: latency registry, request ids, flight
//! recorder.
//!
//! The trace journal answers *post-mortem* questions; this module is
//! the *while-it-runs* complement behind the
//! [`StatsQuery`](crate::wire::WireRequest::StatsQuery) endpoint:
//!
//! * a [`res_obs::Registry`] of wait-free bucketed histograms (wire
//!   round-trip latency per endpoint, queue wait, solver time, batch
//!   fan-out) whose snapshots never block workers;
//! * the deterministic request-id scheme — `c<conn>.<seq>`, connection
//!   number from one atomic, request sequence per connection — that
//!   correlates a wire answer with its `serve.req` span tree in the
//!   journal;
//! * a **flight recorder**: a bounded ring of the most recent request
//!   summaries (id, endpoint, outcome, phase timings), so "what just
//!   happened" is answerable without replaying the whole journal.
//!
//! Everything here is passive. Timings live only in telemetry payloads
//! (`StatsResponse`, journal events) — never in a verdict field — and
//! the byte-identity currency of the lifecycle tests excludes all of
//! it.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;
use std::time::Instant;

use mvm_json::json_struct;
use res_obs::{Histogram, Registry};

/// One completed (or rejected) request, as kept in the flight-recorder
/// ring and served in [`StatsResponse::recent`](crate::wire::StatsResponse::recent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// The request id (`c<conn>.<seq>`).
    pub req_id: String,
    /// Wire endpoint (`triage`, `bucket_batch`, `hw_filter_batch`,
    /// `stats`, `shutdown`).
    pub endpoint: String,
    /// `ok`, `rejected_queue`, `rejected_budget`, `shutdown`, or
    /// `error`.
    pub outcome: String,
    /// Wall time from frame read to reply flushed, µs.
    pub total_us: u64,
    /// Time spent queued before a worker picked the job up, µs (0 for
    /// requests answered inline).
    pub queue_wait_us: u64,
    /// Time inside synthesis/solver work, µs.
    pub synth_us: u64,
    /// Time checking out (and possibly committing/evicting) hot-store
    /// state, µs.
    pub store_us: u64,
}

json_struct!(RequestSummary {
    req_id,
    endpoint,
    outcome,
    total_us,
    queue_wait_us,
    synth_us,
    store_us
});

impl RequestSummary {
    /// This summary with every timing zeroed — what stays is
    /// deterministic for a fixed request sequence.
    pub fn normalized(&self) -> RequestSummary {
        RequestSummary {
            req_id: self.req_id.clone(),
            endpoint: self.endpoint.clone(),
            outcome: self.outcome.clone(),
            total_us: 0,
            queue_wait_us: 0,
            synth_us: 0,
            store_us: 0,
        }
    }
}

/// Per-request phase timings, carried from the worker back to the
/// connection thread alongside the response (never serialized into the
/// response itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct Phases {
    /// Queue wait, µs.
    pub queue_wait_us: u64,
    /// Synthesis/solver time, µs.
    pub synth_us: u64,
    /// Hot-store checkout/commit time, µs.
    pub store_us: u64,
}

/// The daemon's shared telemetry state. One instance per daemon,
/// reachable from every connection and worker thread.
pub struct Telemetry {
    /// The live histogram registry (always enabled in a daemon — the
    /// stats endpoint is part of the service contract).
    pub registry: Registry,
    /// Round-trip latency per endpoint, µs.
    pub rtt_triage: Histogram,
    /// Round-trip latency of `bucket_batch` requests, µs.
    pub rtt_bucket_batch: Histogram,
    /// Round-trip latency of `hw_filter_batch` requests, µs.
    pub rtt_hw_filter_batch: Histogram,
    /// Round-trip latency of stats reads, µs.
    pub rtt_stats: Histogram,
    /// Queue wait of admitted jobs, µs.
    pub queue_wait: Histogram,
    /// Solver/synthesis time per job, µs.
    pub synth: Histogram,
    /// Items per batch request.
    pub batch_fanout: Histogram,
    /// When the daemon booted (uptime in stats payloads only).
    pub started: Instant,
    /// Connections accepted so far; each connection's number seeds its
    /// request ids.
    pub conn_seq: AtomicU64,
    /// Requests read off the wire (all endpoints, admitted or not).
    pub requests: AtomicU64,
    /// Requests slower than this journal a `serve.slow` mark and are
    /// always worth a look in the flight recorder. `None` disables.
    pub slow_us: Option<u64>,
    flight: Mutex<VecDeque<RequestSummary>>,
    recent_cap: usize,
}

impl Telemetry {
    /// Fresh telemetry for one daemon.
    pub fn new(slow_us: Option<u64>, recent_cap: usize) -> Telemetry {
        let registry = Registry::new();
        Telemetry {
            rtt_triage: registry.histogram("serve.rtt.triage_us"),
            rtt_bucket_batch: registry.histogram("serve.rtt.bucket_batch_us"),
            rtt_hw_filter_batch: registry.histogram("serve.rtt.hw_filter_batch_us"),
            rtt_stats: registry.histogram("serve.rtt.stats_us"),
            queue_wait: registry.histogram("serve.queue.wait_us"),
            synth: registry.histogram("serve.synth.us"),
            batch_fanout: registry.histogram("serve.batch.fanout"),
            registry,
            started: Instant::now(),
            conn_seq: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            slow_us,
            flight: Mutex::new(VecDeque::new()),
            recent_cap,
        }
    }

    /// The round-trip histogram for a wire endpoint name.
    pub fn rtt_for(&self, endpoint: &str) -> &Histogram {
        match endpoint {
            "triage" => &self.rtt_triage,
            "bucket_batch" => &self.rtt_bucket_batch,
            "hw_filter_batch" => &self.rtt_hw_filter_batch,
            _ => &self.rtt_stats,
        }
    }

    /// Pushes one summary into the flight ring, evicting the oldest
    /// past capacity.
    pub fn push_recent(&self, summary: RequestSummary) {
        if self.recent_cap == 0 {
            return;
        }
        let mut ring = self.flight.lock().expect("flight lock");
        if ring.len() == self.recent_cap {
            ring.pop_front();
        }
        ring.push_back(summary);
    }

    /// The ring's contents, oldest first.
    pub fn recent(&self) -> Vec<RequestSummary> {
        self.flight
            .lock()
            .expect("flight lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_summary_round_trips() {
        let s = RequestSummary {
            req_id: "c3.7".into(),
            endpoint: "triage".into(),
            outcome: "ok".into(),
            total_us: 1234,
            queue_wait_us: 56,
            synth_us: 900,
            store_us: 78,
        };
        let back: RequestSummary = mvm_json::from_str(&mvm_json::to_string(&s)).unwrap();
        assert_eq!(back, s);
        let norm = s.normalized();
        assert_eq!(norm.req_id, "c3.7");
        assert_eq!(
            (
                norm.total_us,
                norm.queue_wait_us,
                norm.synth_us,
                norm.store_us
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn flight_ring_is_bounded_fifo() {
        let t = Telemetry::new(None, 2);
        for i in 0..5 {
            t.push_recent(RequestSummary {
                req_id: format!("c1.{i}"),
                endpoint: "triage".into(),
                outcome: "ok".into(),
                total_us: 0,
                queue_wait_us: 0,
                synth_us: 0,
                store_us: 0,
            });
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].req_id, "c1.3");
        assert_eq!(recent[1].req_id, "c1.4");
        let empty = Telemetry::new(None, 0);
        empty.push_recent(recent[0].clone());
        assert!(empty.recent().is_empty(), "cap 0 disables the ring");
    }

    #[test]
    fn rtt_routing_covers_every_endpoint() {
        let t = Telemetry::new(None, 4);
        t.rtt_for("triage").record(1);
        t.rtt_for("bucket_batch").record(2);
        t.rtt_for("hw_filter_batch").record(3);
        t.rtt_for("stats").record(4);
        let names: Vec<(String, u64)> = t
            .registry
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.count))
            .collect();
        for (name, count) in &names {
            if name.starts_with("serve.rtt.") {
                assert_eq!(*count, 1, "{name}");
            }
        }
        assert!(names.iter().any(|(n, _)| n == "serve.rtt.stats_us"));
    }
}
