//! The triage daemon: bounded ingest queue, worker pool, hot store,
//! admission control.
//!
//! ```text
//!            accept thread            worker pool (N threads)
//! client ──► conn thread ──try_send──► bounded queue ──► triage_in_store
//!               │   ▲                                        │
//!               │   └──────────── reply channel ◄────────────┘
//!               └── Rejected{...} when the queue is full or the
//!                   request's budget exceeds the daemon's ceiling
//! ```
//!
//! Each connection gets a thread that reads framed requests and writes
//! framed responses in order. Work requests pass admission control and
//! enter a bounded [`std::sync::mpsc::sync_channel`]; a full queue is
//! answered *immediately* with [`WireResponse::Rejected`] — the
//! backpressure contract — rather than blocking the client. Workers
//! drain the queue, route every store access through the shared
//! [`HotStore`], and answer through a per-job reply channel.
//!
//! Admission control never *clamps* a budget — a clamped budget would
//! change which suffixes a request finds, silently breaking the
//! byte-identity contract. A request either runs with exactly the
//! budget it asked for or is rejected with the reason. Batch requests
//! occupy one queue slot, so their per-item ceiling is the daemon's
//! per-request ceiling [`res_core::Budget::slice`]d across the batch.

use std::io::{self, BufReader, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use res_core::{Budget, ResConfig};
use res_obs::Recorder;
use res_store::CompactionPolicy;
use res_triage::{hw_verdict_for, hw_verdict_for_in_store, triage, triage_in_store, TriageRequest};

use crate::hotstore::HotStore;
use crate::telemetry::{Phases, RequestSummary, Telemetry};
use crate::wire::{
    read_request, write_response, Conn, Listener, ServerStats, StatsRequest, StatsResponse,
    WireRequest, WireResponse,
};

/// Everything the daemon is configured with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address: `127.0.0.1:0` (loopback TCP, port 0 picks a free
    /// one) or `unix:/path/to.sock`.
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed (nothing
    /// drains — the backpressure tests use it to fill the queue
    /// deterministically).
    pub workers: usize,
    /// Ingest queue capacity; admission rejects beyond it.
    pub queue_cap: usize,
    /// Programs kept warm in the hot store.
    pub hot_cap: usize,
    /// Hot-store directory (`None` serves store-less: every request
    /// pays a cold search).
    pub store_dir: Option<PathBuf>,
    /// Compaction policy applied to every hot store file on commit.
    pub policy: CompactionPolicy,
    /// Per-request budget ceiling. `None` admits everything; `Some`
    /// rejects any request whose effective budget exceeds a dimension
    /// (batches: the ceiling sliced across the batch).
    pub ceiling: Option<Budget>,
    /// Base engine config requests inherit (and override per call).
    /// `cache_path`/`trace` are cleared at startup — the hot store owns
    /// store routing, and per-engine journals would truncate each
    /// other.
    pub config: ResConfig,
    /// The daemon's JSONL trace journal (`serve.*` and `store.*`
    /// metrics land here).
    pub trace: Option<PathBuf>,
    /// Requests slower than this (µs, wall time from frame read to
    /// reply flushed) journal a `serve.slow` mark naming their span
    /// tree. `None` disables slow-request marking.
    pub slow_us: Option<u64>,
    /// Flight-recorder capacity: how many recent request summaries the
    /// stats endpoint can serve. `0` disables the ring.
    pub recent_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            hot_cap: 8,
            store_dir: None,
            policy: CompactionPolicy::default(),
            ceiling: None,
            config: ResConfig::default(),
            trace: None,
            slow_us: None,
            recent_cap: 64,
        }
    }
}

#[derive(Default)]
struct Counters {
    depth: AtomicU64,
    admitted: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_budget: AtomicU64,
    completed: AtomicU64,
}

struct Shared {
    addr: String,
    config: ResConfig,
    queue_cap: usize,
    workers: usize,
    hot: Option<HotStore>,
    ceiling: Option<Budget>,
    rec: Recorder,
    serve_rec: Recorder,
    counters: Counters,
    telem: Telemetry,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (hot_hits, hot_misses, hot_evictions) =
            self.hot.as_ref().map(|h| h.counters()).unwrap_or((0, 0, 0));
        ServerStats {
            queue_depth: self.counters.depth.load(Ordering::SeqCst),
            queue_cap: self.queue_cap as u64,
            workers: self.workers as u64,
            hot_programs: self.hot.as_ref().map(|h| h.len() as u64).unwrap_or(0),
            hot_hits,
            hot_misses,
            hot_evictions,
            admitted: self.counters.admitted.load(Ordering::SeqCst),
            rejected_queue: self.counters.rejected_queue.load(Ordering::SeqCst),
            rejected_budget: self.counters.rejected_budget.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
        }
    }

    /// Flushes the counters as `serve.*` gauges (queue depth, hot-set
    /// size, admissions, rejections) and journals a sample of each —
    /// called per request completion, so the journal carries a **time
    /// series** of queue depth and hot-set size, not just a final
    /// total (the shutdown [`Recorder::finish`] still writes the last
    /// word).
    fn publish_gauges(&self) {
        let s = self.stats();
        self.serve_rec.gauge("queue.depth", s.queue_depth);
        self.serve_rec.gauge("hot.programs", s.hot_programs);
        self.serve_rec.gauge("admitted", s.admitted);
        self.serve_rec.gauge("rejected.queue", s.rejected_queue);
        self.serve_rec.gauge("rejected.budget", s.rejected_budget);
        self.serve_rec.gauge("completed", s.completed);
        self.serve_rec.flush_gauges();
    }

    /// The full telemetry snapshot behind [`WireRequest::StatsQuery`].
    /// Reads only atomics, the registry's bucket counters, and the
    /// flight ring — no solver work, never blocks a worker.
    fn stats_response(&self, q: &StatsRequest) -> StatsResponse {
        StatsResponse {
            server: self.stats(),
            uptime_us: self.telem.started.elapsed().as_micros() as u64,
            requests: self.telem.requests.load(Ordering::SeqCst),
            connections: self.telem.conn_seq.load(Ordering::SeqCst),
            slow_threshold_us: self.telem.slow_us.unwrap_or(0),
            histograms: if q.histograms {
                self.telem.registry.snapshot()
            } else {
                Vec::new()
            },
            recent: if q.recent {
                self.telem.recent()
            } else {
                Vec::new()
            },
        }
    }
}

/// One queued job: the work, the channel its answer (plus worker-side
/// phase timings) goes back on, and the request's telemetry context —
/// the root span id so worker spans parent under the connection
/// thread's `serve.req`, and the enqueue instant for queue-wait
/// accounting.
struct Job {
    req: WireRequest,
    reply: mpsc::Sender<(WireResponse, Phases)>,
    parent: Option<u64>,
    enqueued: Instant,
}

/// A running daemon. Dropping the handle stops it ([`ServerHandle::stop`]).
pub struct ServerHandle {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Dropped by [`stop`](ServerHandle::stop) so that with zero
    /// workers the queued jobs (and their reply senders) are released
    /// and blocked connections fail over to an error response.
    queue_rx: Option<Arc<Mutex<Receiver<Job>>>>,
    stopped: bool,
}

impl ServerHandle {
    /// The bound address, connectable by [`crate::TriageClient`].
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A stats snapshot without going over the wire.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until a client asks the daemon to shut down
    /// ([`WireRequest::Shutdown`]), then tears it down — the
    /// foreground `res-cli serve` path.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop();
    }

    /// Stops the daemon: refuses new connections, releases the queue,
    /// joins every thread, commits the hot store, and flushes the
    /// trace journal. Idempotent. Connections still open block the
    /// join until their client disconnects.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // With zero workers this is the only receiver, so dropping it
        // here cancels queued jobs and releases conn threads blocked on
        // their reply channel — they must exit before the accept join
        // below can finish. With workers the receiver stays alive
        // through their Arc clones and they drain the queue as usual.
        self.queue_rx = None;
        // Unblock the accept loop; it checks the flag per iteration.
        let _ = Conn::connect(&self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(hot) = &self.shared.hot {
            let committed = hot.flush_all();
            self.shared.serve_rec.event_with("flush", || {
                vec![("committed".into(), committed.to_string())]
            });
        }
        self.shared.publish_gauges();
        // Journal the live latency distributions so `res-cli journal
        // --quantiles` works post-mortem from the file alone.
        self.shared.telem.registry.flush_to(&self.shared.rec);
        self.shared.rec.finish();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Boots the daemon and returns its handle (with the actual bound
/// address, for `addr`s like `127.0.0.1:0`).
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = Listener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let rec = cfg
        .trace
        .as_ref()
        .map(Recorder::journal)
        .unwrap_or_default();
    let serve_rec = rec.scoped("serve");
    let hot = cfg
        .store_dir
        .as_ref()
        .map(|dir| HotStore::new(dir, cfg.hot_cap, cfg.policy, &rec));
    let mut config = cfg.config.clone();
    config.cache_path = None;
    config.trace = None;
    let shared = Arc::new(Shared {
        addr: addr.clone(),
        config,
        queue_cap: cfg.queue_cap,
        workers: cfg.workers,
        hot,
        ceiling: cfg.ceiling,
        rec,
        serve_rec,
        counters: Counters::default(),
        telem: Telemetry::new(cfg.slow_us, cfg.recent_cap),
        shutdown: AtomicBool::new(false),
    });
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
        .map(|w| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("res-serve-w{w}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker")
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("res-serve-accept".into())
            .spawn(move || accept_loop(listener, shared, tx))
            .expect("spawn accept loop")
    };
    shared
        .serve_rec
        .event_with("start", || vec![("addr".into(), addr.clone())]);
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        queue_rx: Some(rx),
        stopped: false,
    })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, tx: SyncSender<Job>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let handle = std::thread::Builder::new()
            .name("res-serve-conn".into())
            .spawn(move || {
                let _ = handle_conn(conn, &shared, &tx);
            })
            .expect("spawn conn thread");
        conns.push(handle);
    }
    drop(tx);
    for h in conns {
        let _ = h.join();
    }
}

/// The wire endpoint name of a request (the flight recorder's and the
/// RTT histograms' label vocabulary).
fn endpoint_name(req: &WireRequest) -> &'static str {
    match req {
        WireRequest::Triage(_) => "triage",
        WireRequest::BucketBatch(_) => "bucket_batch",
        WireRequest::HwFilterBatch(_) => "hw_filter_batch",
        WireRequest::Stats | WireRequest::StatsQuery(_) => "stats",
        WireRequest::Shutdown => "shutdown",
    }
}

/// The flight-recorder outcome label of a response.
fn outcome_name(resp: &WireResponse) -> &'static str {
    match resp {
        WireResponse::Rejected { reason, .. } if reason == "queue full" => "rejected_queue",
        WireResponse::Rejected { .. } => "rejected_budget",
        WireResponse::ShuttingDown => "shutdown",
        WireResponse::Error(_) => "error",
        _ => "ok",
    }
}

fn handle_conn(conn: Conn, shared: &Shared, tx: &SyncSender<Job>) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    // Connection numbers start at 1; request sequence numbers at 0.
    // One client issuing requests in order therefore sees the exact
    // same ids at any worker count — the determinism the request-id
    // tests pin.
    let conn_id = shared.telem.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let mut seq: u64 = 0;
    while let Some(req) = read_request(&mut reader)? {
        let req_id = format!("c{conn_id}.{seq}");
        seq += 1;
        shared.telem.requests.fetch_add(1, Ordering::SeqCst);
        let endpoint = endpoint_name(&req);
        let started = Instant::now();
        // Root the request's span tree and journal the correlation
        // mark (`req` ↔ `span` ↔ `endpoint`) that `res-obs::query`
        // reconstructs requests from.
        let span = shared.serve_rec.span("req");
        shared.serve_rec.event_with("req.meta", || {
            vec![
                ("req".into(), req_id.clone()),
                (
                    "span".into(),
                    span.id().map(|id| id.to_string()).unwrap_or_default(),
                ),
                ("endpoint".into(), endpoint.into()),
            ]
        });
        let (mut resp, phases) = match req {
            // Stats reads are answered inline — no queue slot, no
            // solver work — so they succeed even under backpressure.
            WireRequest::Stats => (WireResponse::Stats(shared.stats()), Phases::default()),
            WireRequest::StatsQuery(q) => (
                WireResponse::StatsReport(shared.stats_response(&q)),
                Phases::default(),
            ),
            WireRequest::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.serve_rec.event_with("shutdown", || vec![]);
                // Wake the accept loop so it notices the flag.
                let _ = Conn::connect(&shared.addr);
                (WireResponse::ShuttingDown, Phases::default())
            }
            work => dispatch(work, shared, tx, span.id()),
        };
        // Echo the request id in the wire answer. Only the verdict-
        // carrying payload has a field for it; the identity currency
        // (`verdict|deadlock|bucket_key|suffixes`) excludes it.
        if let WireResponse::Triage(t) = &mut resp {
            t.req_id = Some(req_id.clone());
        }
        {
            let _reply = span.child("req.reply");
            write_response(&mut writer, &resp)?;
            writer.flush()?;
        }
        let span_id = span.id();
        span.end();
        let total_us = started.elapsed().as_micros() as u64;
        shared.telem.rtt_for(endpoint).record(total_us);
        let summary = RequestSummary {
            req_id,
            endpoint: endpoint.into(),
            outcome: outcome_name(&resp).into(),
            total_us,
            queue_wait_us: phases.queue_wait_us,
            synth_us: phases.synth_us,
            store_us: phases.store_us,
        };
        if shared.telem.slow_us.is_some_and(|slow| total_us >= slow) {
            shared.serve_rec.event_with("slow", || {
                vec![
                    ("req".into(), summary.req_id.clone()),
                    (
                        "span".into(),
                        span_id.map(|id| id.to_string()).unwrap_or_default(),
                    ),
                    ("endpoint".into(), summary.endpoint.clone()),
                    ("total_us".into(), total_us.to_string()),
                    ("queue_wait_us".into(), summary.queue_wait_us.to_string()),
                    ("synth_us".into(), summary.synth_us.to_string()),
                    ("store_us".into(), summary.store_us.to_string()),
                ]
            });
        }
        shared.telem.push_recent(summary);
    }
    Ok(())
}

/// Admission + enqueue + wait for the worker's answer. `parent` is the
/// request's root span id; the admission span and the worker's phase
/// spans all parent under it, so the journal carries one reconcilable
/// tree per request.
fn dispatch(
    req: WireRequest,
    shared: &Shared,
    tx: &SyncSender<Job>,
    parent: Option<u64>,
) -> (WireResponse, Phases) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (WireResponse::ShuttingDown, Phases::default());
    }
    let admission = shared.serve_rec.span_under("req.admission", parent);
    let admitted = admit(&req, shared);
    drop(admission);
    if let Err(reason) = admitted {
        shared
            .counters
            .rejected_budget
            .fetch_add(1, Ordering::SeqCst);
        shared.serve_rec.counter("rejected.budget", 1);
        return (
            WireResponse::Rejected {
                reason,
                queue_depth: shared.counters.depth.load(Ordering::SeqCst),
            },
            Phases::default(),
        );
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        req,
        reply: reply_tx,
        parent,
        enqueued: Instant::now(),
    };
    // Count the job before handing it over: a worker may dequeue (and
    // decrement) the instant try_send returns.
    let depth = shared.counters.depth.fetch_add(1, Ordering::SeqCst) + 1;
    match tx.try_send(job) {
        Ok(()) => {
            shared.counters.admitted.fetch_add(1, Ordering::SeqCst);
            shared.serve_rec.counter("admitted", 1);
            shared.serve_rec.gauge("queue.depth", depth);
        }
        Err(TrySendError::Full(_)) => {
            let depth = shared.counters.depth.fetch_sub(1, Ordering::SeqCst) - 1;
            shared
                .counters
                .rejected_queue
                .fetch_add(1, Ordering::SeqCst);
            shared.serve_rec.counter("rejected.queue", 1);
            return (
                WireResponse::Rejected {
                    reason: "queue full".into(),
                    queue_depth: depth,
                },
                Phases::default(),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.counters.depth.fetch_sub(1, Ordering::SeqCst);
            return (WireResponse::ShuttingDown, Phases::default());
        }
    }
    reply_rx.recv().unwrap_or_else(|_| {
        (
            WireResponse::Error("server shut down before completing".into()),
            Phases::default(),
        )
    })
}

/// Checks a work request against the daemon's budget ceiling. Batches
/// share one queue slot, so each item must fit the ceiling sliced
/// across the batch ([`Budget::slice`]).
fn admit(req: &WireRequest, shared: &Shared) -> Result<(), String> {
    let Some(ceiling) = shared.ceiling else {
        return Ok(());
    };
    let items: Vec<&TriageRequest> = match req {
        WireRequest::Triage(r) => vec![r],
        WireRequest::BucketBatch(rs) | WireRequest::HwFilterBatch(rs) => rs.iter().collect(),
        WireRequest::Stats | WireRequest::StatsQuery(_) | WireRequest::Shutdown => return Ok(()),
    };
    let cap = ceiling.slice(items.len().max(1));
    for (i, r) in items.iter().enumerate() {
        let b = r
            .synth_options(&shared.config)
            .effective_budget(&shared.config);
        if b.max_nodes > cap.max_nodes {
            return Err(format!(
                "item {i}: max_nodes {} exceeds admitted ceiling {}",
                b.max_nodes, cap.max_nodes
            ));
        }
        if b.hyp_max_steps > cap.hyp_max_steps {
            return Err(format!(
                "item {i}: hyp_max_steps {} exceeds admitted ceiling {}",
                b.hyp_max_steps, cap.hyp_max_steps
            ));
        }
        match (b.max_solver_assignments, cap.max_solver_assignments) {
            (_, None) => {}
            (None, Some(cap)) => {
                return Err(format!(
                    "item {i}: unlimited solver assignments exceed admitted ceiling {cap}"
                ));
            }
            (Some(b), Some(cap)) if b > cap => {
                return Err(format!(
                    "item {i}: max_solver_assignments {b} exceeds admitted ceiling {cap}"
                ));
            }
            _ => {}
        }
        if let Some(cap) = cap.deadline {
            match b.deadline {
                None => {
                    return Err(format!(
                        "item {i}: unbounded deadline exceeds admitted ceiling {}ms",
                        cap.as_millis()
                    ));
                }
                Some(d) if d > cap => {
                    return Err(format!(
                        "item {i}: deadline {}ms exceeds admitted ceiling {}ms",
                        d.as_millis(),
                        cap.as_millis()
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("queue lock");
            rx.recv()
        };
        let Ok(job) = job else { break };
        let depth = shared.counters.depth.fetch_sub(1, Ordering::SeqCst) - 1;
        shared.serve_rec.gauge("queue.depth", depth);
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        shared.telem.queue_wait.record(queue_wait_us);
        // The worker's phases parent under the connection thread's
        // `serve.req` root via the id carried in the job — a span
        // hierarchy that crosses threads.
        let work = shared.serve_rec.span_under("req.work", job.parent);
        let started = Instant::now();
        let (resp, mut phases) = process(job.req, shared, work.id());
        drop(work);
        phases.queue_wait_us = queue_wait_us;
        shared.telem.synth.record(phases.synth_us);
        shared
            .serve_rec
            .observe("latency_us", started.elapsed().as_micros() as u64);
        shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        shared.serve_rec.counter("completed", 1);
        shared.publish_gauges();
        // The conn thread may have given up (client gone) — fine.
        let _ = job.reply.send((resp, phases));
    }
}

/// Runs one admitted job. Every store access goes through the hot
/// store; with no store dir configured the plain library entry points
/// run (same results, cold each time). `parent` is the worker's
/// `serve.req.work` span; store/synth phases open under it and their
/// durations accumulate in the returned [`Phases`].
fn process(req: WireRequest, shared: &Shared, parent: Option<u64>) -> (WireResponse, Phases) {
    let mut phases = Phases::default();
    let resp = match req {
        WireRequest::Triage(r) => WireResponse::Triage(run_triage(&r, shared, parent, &mut phases)),
        WireRequest::BucketBatch(rs) => {
            shared.telem.batch_fanout.record(rs.len() as u64);
            WireResponse::BucketBatch(
                rs.iter()
                    .map(|r| run_triage(r, shared, parent, &mut phases).bucket_key)
                    .collect(),
            )
        }
        WireRequest::HwFilterBatch(rs) => {
            shared.telem.batch_fanout.record(rs.len() as u64);
            WireResponse::HwFilterBatch(
                rs.iter()
                    .map(|r| match &shared.hot {
                        Some(hot) => {
                            let store = {
                                let t = Instant::now();
                                let _span = shared.serve_rec.span_under("req.store", parent);
                                let store = hot.checkout(&r.program);
                                phases.store_us += t.elapsed().as_micros() as u64;
                                store
                            };
                            let mut store = store.lock().expect("store lock");
                            let t = Instant::now();
                            let _span = shared.serve_rec.span_under("req.synth", parent);
                            let v = hw_verdict_for_in_store(r, &shared.config, &mut store);
                            phases.synth_us += t.elapsed().as_micros() as u64;
                            v
                        }
                        None => {
                            let t = Instant::now();
                            let _span = shared.serve_rec.span_under("req.synth", parent);
                            let v = hw_verdict_for(r, &shared.config);
                            phases.synth_us += t.elapsed().as_micros() as u64;
                            v
                        }
                    })
                    .collect(),
            )
        }
        WireRequest::Stats | WireRequest::StatsQuery(_) | WireRequest::Shutdown => {
            WireResponse::Error("not a queued request".into())
        }
    };
    (resp, phases)
}

fn run_triage(
    r: &TriageRequest,
    shared: &Shared,
    parent: Option<u64>,
    phases: &mut Phases,
) -> res_triage::TriageResponse {
    match &shared.hot {
        Some(hot) => {
            // The checkout is where hot-store commits happen (evicting
            // the LRU store commits it), so the `req.store` span covers
            // commit latency too.
            let store = {
                let t = Instant::now();
                let _span = shared.serve_rec.span_under("req.store", parent);
                let store = hot.checkout(&r.program);
                phases.store_us += t.elapsed().as_micros() as u64;
                store
            };
            let mut store = store.lock().expect("store lock");
            let t = Instant::now();
            let _span = shared.serve_rec.span_under("req.synth", parent);
            let resp = triage_in_store(r, &shared.config, &mut store);
            phases.synth_us += t.elapsed().as_micros() as u64;
            resp
        }
        None => {
            let t = Instant::now();
            let _span = shared.serve_rec.span_under("req.synth", parent);
            let resp = triage(r, &shared.config);
            phases.synth_us += t.elapsed().as_micros() as u64;
            resp
        }
    }
}
