//! The triage daemon: bounded ingest queue, worker pool, hot store,
//! admission control.
//!
//! ```text
//!            accept thread            worker pool (N threads)
//! client ──► conn thread ──try_send──► bounded queue ──► triage_in_store
//!               │   ▲                                        │
//!               │   └──────────── reply channel ◄────────────┘
//!               └── Rejected{...} when the queue is full or the
//!                   request's budget exceeds the daemon's ceiling
//! ```
//!
//! Each connection gets a thread that reads framed requests and writes
//! framed responses in order. Work requests pass admission control and
//! enter a bounded [`std::sync::mpsc::sync_channel`]; a full queue is
//! answered *immediately* with [`WireResponse::Rejected`] — the
//! backpressure contract — rather than blocking the client. Workers
//! drain the queue, route every store access through the shared
//! [`HotStore`], and answer through a per-job reply channel.
//!
//! Admission control never *clamps* a budget — a clamped budget would
//! change which suffixes a request finds, silently breaking the
//! byte-identity contract. A request either runs with exactly the
//! budget it asked for or is rejected with the reason. Batch requests
//! occupy one queue slot, so their per-item ceiling is the daemon's
//! per-request ceiling [`res_core::Budget::slice`]d across the batch.

use std::io::{self, BufReader, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use res_core::{Budget, ResConfig};
use res_obs::Recorder;
use res_store::CompactionPolicy;
use res_triage::{hw_verdict_for, hw_verdict_for_in_store, triage, triage_in_store, TriageRequest};

use crate::hotstore::HotStore;
use crate::wire::{
    read_request, write_response, Conn, Listener, ServerStats, WireRequest, WireResponse,
};

/// Everything the daemon is configured with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address: `127.0.0.1:0` (loopback TCP, port 0 picks a free
    /// one) or `unix:/path/to.sock`.
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed (nothing
    /// drains — the backpressure tests use it to fill the queue
    /// deterministically).
    pub workers: usize,
    /// Ingest queue capacity; admission rejects beyond it.
    pub queue_cap: usize,
    /// Programs kept warm in the hot store.
    pub hot_cap: usize,
    /// Hot-store directory (`None` serves store-less: every request
    /// pays a cold search).
    pub store_dir: Option<PathBuf>,
    /// Compaction policy applied to every hot store file on commit.
    pub policy: CompactionPolicy,
    /// Per-request budget ceiling. `None` admits everything; `Some`
    /// rejects any request whose effective budget exceeds a dimension
    /// (batches: the ceiling sliced across the batch).
    pub ceiling: Option<Budget>,
    /// Base engine config requests inherit (and override per call).
    /// `cache_path`/`trace` are cleared at startup — the hot store owns
    /// store routing, and per-engine journals would truncate each
    /// other.
    pub config: ResConfig,
    /// The daemon's JSONL trace journal (`serve.*` and `store.*`
    /// metrics land here).
    pub trace: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            hot_cap: 8,
            store_dir: None,
            policy: CompactionPolicy::default(),
            ceiling: None,
            config: ResConfig::default(),
            trace: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    depth: AtomicU64,
    admitted: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_budget: AtomicU64,
    completed: AtomicU64,
}

struct Shared {
    addr: String,
    config: ResConfig,
    queue_cap: usize,
    workers: usize,
    hot: Option<HotStore>,
    ceiling: Option<Budget>,
    rec: Recorder,
    serve_rec: Recorder,
    counters: Counters,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (hot_hits, hot_misses, hot_evictions) =
            self.hot.as_ref().map(|h| h.counters()).unwrap_or((0, 0, 0));
        ServerStats {
            queue_depth: self.counters.depth.load(Ordering::SeqCst),
            queue_cap: self.queue_cap as u64,
            workers: self.workers as u64,
            hot_programs: self.hot.as_ref().map(|h| h.len() as u64).unwrap_or(0),
            hot_hits,
            hot_misses,
            hot_evictions,
            admitted: self.counters.admitted.load(Ordering::SeqCst),
            rejected_queue: self.counters.rejected_queue.load(Ordering::SeqCst),
            rejected_budget: self.counters.rejected_budget.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
        }
    }

    /// Flushes the counters as `serve.*` gauges (queue depth, hot-set
    /// size, admissions, rejections) so the journal carries them even
    /// if no event fired recently.
    fn publish_gauges(&self) {
        let s = self.stats();
        self.serve_rec.gauge("queue.depth", s.queue_depth);
        self.serve_rec.gauge("hot.programs", s.hot_programs);
        self.serve_rec.gauge("admitted", s.admitted);
        self.serve_rec.gauge("rejected.queue", s.rejected_queue);
        self.serve_rec.gauge("rejected.budget", s.rejected_budget);
        self.serve_rec.gauge("completed", s.completed);
    }
}

/// One queued job: the work plus the channel its answer goes back on.
struct Job {
    req: WireRequest,
    reply: mpsc::Sender<WireResponse>,
}

/// A running daemon. Dropping the handle stops it ([`ServerHandle::stop`]).
pub struct ServerHandle {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Dropped by [`stop`](ServerHandle::stop) so that with zero
    /// workers the queued jobs (and their reply senders) are released
    /// and blocked connections fail over to an error response.
    queue_rx: Option<Arc<Mutex<Receiver<Job>>>>,
    stopped: bool,
}

impl ServerHandle {
    /// The bound address, connectable by [`crate::TriageClient`].
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A stats snapshot without going over the wire.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until a client asks the daemon to shut down
    /// ([`WireRequest::Shutdown`]), then tears it down — the
    /// foreground `res-cli serve` path.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stop();
    }

    /// Stops the daemon: refuses new connections, releases the queue,
    /// joins every thread, commits the hot store, and flushes the
    /// trace journal. Idempotent. Connections still open block the
    /// join until their client disconnects.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // With zero workers this is the only receiver, so dropping it
        // here cancels queued jobs and releases conn threads blocked on
        // their reply channel — they must exit before the accept join
        // below can finish. With workers the receiver stays alive
        // through their Arc clones and they drain the queue as usual.
        self.queue_rx = None;
        // Unblock the accept loop; it checks the flag per iteration.
        let _ = Conn::connect(&self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(hot) = &self.shared.hot {
            let committed = hot.flush_all();
            self.shared.serve_rec.event_with("flush", || {
                vec![("committed".into(), committed.to_string())]
            });
        }
        self.shared.publish_gauges();
        self.shared.rec.finish();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Boots the daemon and returns its handle (with the actual bound
/// address, for `addr`s like `127.0.0.1:0`).
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = Listener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let rec = cfg
        .trace
        .as_ref()
        .map(Recorder::journal)
        .unwrap_or_default();
    let serve_rec = rec.scoped("serve");
    let hot = cfg
        .store_dir
        .as_ref()
        .map(|dir| HotStore::new(dir, cfg.hot_cap, cfg.policy, &rec));
    let mut config = cfg.config.clone();
    config.cache_path = None;
    config.trace = None;
    let shared = Arc::new(Shared {
        addr: addr.clone(),
        config,
        queue_cap: cfg.queue_cap,
        workers: cfg.workers,
        hot,
        ceiling: cfg.ceiling,
        rec,
        serve_rec,
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
    });
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
        .map(|w| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("res-serve-w{w}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker")
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("res-serve-accept".into())
            .spawn(move || accept_loop(listener, shared, tx))
            .expect("spawn accept loop")
    };
    shared
        .serve_rec
        .event_with("start", || vec![("addr".into(), addr.clone())]);
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        queue_rx: Some(rx),
        stopped: false,
    })
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, tx: SyncSender<Job>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let handle = std::thread::Builder::new()
            .name("res-serve-conn".into())
            .spawn(move || {
                let _ = handle_conn(conn, &shared, &tx);
            })
            .expect("spawn conn thread");
        conns.push(handle);
    }
    drop(tx);
    for h in conns {
        let _ = h.join();
    }
}

fn handle_conn(conn: Conn, shared: &Shared, tx: &SyncSender<Job>) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    while let Some(req) = read_request(&mut reader)? {
        let resp = match req {
            WireRequest::Stats => WireResponse::Stats(shared.stats()),
            WireRequest::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.serve_rec.event_with("shutdown", || vec![]);
                // Wake the accept loop so it notices the flag.
                let _ = Conn::connect(&shared.addr);
                WireResponse::ShuttingDown
            }
            work => dispatch(work, shared, tx),
        };
        write_response(&mut writer, &resp)?;
        writer.flush()?;
    }
    Ok(())
}

/// Admission + enqueue + wait for the worker's answer.
fn dispatch(req: WireRequest, shared: &Shared, tx: &SyncSender<Job>) -> WireResponse {
    if shared.shutdown.load(Ordering::SeqCst) {
        return WireResponse::ShuttingDown;
    }
    if let Err(reason) = admit(&req, shared) {
        shared
            .counters
            .rejected_budget
            .fetch_add(1, Ordering::SeqCst);
        shared.serve_rec.counter("rejected.budget", 1);
        return WireResponse::Rejected {
            reason,
            queue_depth: shared.counters.depth.load(Ordering::SeqCst),
        };
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        req,
        reply: reply_tx,
    };
    // Count the job before handing it over: a worker may dequeue (and
    // decrement) the instant try_send returns.
    let depth = shared.counters.depth.fetch_add(1, Ordering::SeqCst) + 1;
    match tx.try_send(job) {
        Ok(()) => {
            shared.counters.admitted.fetch_add(1, Ordering::SeqCst);
            shared.serve_rec.counter("admitted", 1);
            shared.serve_rec.gauge("queue.depth", depth);
        }
        Err(TrySendError::Full(_)) => {
            let depth = shared.counters.depth.fetch_sub(1, Ordering::SeqCst) - 1;
            shared
                .counters
                .rejected_queue
                .fetch_add(1, Ordering::SeqCst);
            shared.serve_rec.counter("rejected.queue", 1);
            return WireResponse::Rejected {
                reason: "queue full".into(),
                queue_depth: depth,
            };
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.counters.depth.fetch_sub(1, Ordering::SeqCst);
            return WireResponse::ShuttingDown;
        }
    }
    reply_rx
        .recv()
        .unwrap_or_else(|_| WireResponse::Error("server shut down before completing".into()))
}

/// Checks a work request against the daemon's budget ceiling. Batches
/// share one queue slot, so each item must fit the ceiling sliced
/// across the batch ([`Budget::slice`]).
fn admit(req: &WireRequest, shared: &Shared) -> Result<(), String> {
    let Some(ceiling) = shared.ceiling else {
        return Ok(());
    };
    let items: Vec<&TriageRequest> = match req {
        WireRequest::Triage(r) => vec![r],
        WireRequest::BucketBatch(rs) | WireRequest::HwFilterBatch(rs) => rs.iter().collect(),
        WireRequest::Stats | WireRequest::Shutdown => return Ok(()),
    };
    let cap = ceiling.slice(items.len().max(1));
    for (i, r) in items.iter().enumerate() {
        let b = r
            .synth_options(&shared.config)
            .effective_budget(&shared.config);
        if b.max_nodes > cap.max_nodes {
            return Err(format!(
                "item {i}: max_nodes {} exceeds admitted ceiling {}",
                b.max_nodes, cap.max_nodes
            ));
        }
        if b.hyp_max_steps > cap.hyp_max_steps {
            return Err(format!(
                "item {i}: hyp_max_steps {} exceeds admitted ceiling {}",
                b.hyp_max_steps, cap.hyp_max_steps
            ));
        }
        match (b.max_solver_assignments, cap.max_solver_assignments) {
            (_, None) => {}
            (None, Some(cap)) => {
                return Err(format!(
                    "item {i}: unlimited solver assignments exceed admitted ceiling {cap}"
                ));
            }
            (Some(b), Some(cap)) if b > cap => {
                return Err(format!(
                    "item {i}: max_solver_assignments {b} exceeds admitted ceiling {cap}"
                ));
            }
            _ => {}
        }
        if let Some(cap) = cap.deadline {
            match b.deadline {
                None => {
                    return Err(format!(
                        "item {i}: unbounded deadline exceeds admitted ceiling {}ms",
                        cap.as_millis()
                    ));
                }
                Some(d) if d > cap => {
                    return Err(format!(
                        "item {i}: deadline {}ms exceeds admitted ceiling {}ms",
                        d.as_millis(),
                        cap.as_millis()
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("queue lock");
            rx.recv()
        };
        let Ok(job) = job else { break };
        let depth = shared.counters.depth.fetch_sub(1, Ordering::SeqCst) - 1;
        shared.serve_rec.gauge("queue.depth", depth);
        let started = Instant::now();
        let resp = process(job.req, shared);
        shared
            .serve_rec
            .observe("latency_us", started.elapsed().as_micros() as u64);
        shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        shared.serve_rec.counter("completed", 1);
        shared.publish_gauges();
        // The conn thread may have given up (client gone) — fine.
        let _ = job.reply.send(resp);
    }
}

/// Runs one admitted job. Every store access goes through the hot
/// store; with no store dir configured the plain library entry points
/// run (same results, cold each time).
fn process(req: WireRequest, shared: &Shared) -> WireResponse {
    match req {
        WireRequest::Triage(r) => WireResponse::Triage(run_triage(&r, shared)),
        WireRequest::BucketBatch(rs) => WireResponse::BucketBatch(
            rs.iter()
                .map(|r| run_triage(r, shared).bucket_key)
                .collect(),
        ),
        WireRequest::HwFilterBatch(rs) => WireResponse::HwFilterBatch(
            rs.iter()
                .map(|r| match &shared.hot {
                    Some(hot) => {
                        let store = hot.checkout(&r.program);
                        let mut store = store.lock().expect("store lock");
                        hw_verdict_for_in_store(r, &shared.config, &mut store)
                    }
                    None => hw_verdict_for(r, &shared.config),
                })
                .collect(),
        ),
        WireRequest::Stats | WireRequest::Shutdown => {
            WireResponse::Error("not a queued request".into())
        }
    }
}

fn run_triage(r: &TriageRequest, shared: &Shared) -> res_triage::TriageResponse {
    match &shared.hot {
        Some(hot) => {
            let store = hot.checkout(&r.program);
            let mut store = store.lock().expect("store lock");
            triage_in_store(r, &shared.config, &mut store)
        }
        None => triage(r, &shared.config),
    }
}
