//! # res-serve — the long-running triage daemon
//!
//! The paper's §3 deployment story is a *service*: "RES can process
//! incoming bug reports and triage them" — a stream, not a one-shot
//! CLI run. This crate is that service, built entirely from the
//! workspace's existing layers:
//!
//! * **One typed API.** A daemon request is a
//!   [`res_triage::TriageRequest`] — the same mvm-json-serializable
//!   value a direct library caller builds — wrapped in a
//!   [`WireRequest`]; answers come back as
//!   [`res_triage::TriageResponse`]s. Byte-identity between served and
//!   direct results is therefore checkable value-for-value (and is, by
//!   the lifecycle tests and `scripts/ci.sh`).
//! * **Store-framed wire protocol** ([`wire`]). Messages ride the
//!   `res-store` record convention — length-prefixed, FNV-64
//!   checksummed lines — under reserved tags `Q`/`R`, over loopback
//!   TCP or a unix socket. Torn and corrupt frames are detected the
//!   same way a torn store tail is.
//! * **Hot store** ([`hotstore`]). Absorbed per-program
//!   [`res_store::SolverStore`]s stay open across requests in an LRU
//!   set; commits happen on eviction and shutdown, and each commit
//!   runs the store's [`res_store::CompactionPolicy`]
//!   (age/size/supersedure — `store.compact.auto` in the journal).
//! * **Bounded ingest + admission control** ([`server`]). A full queue
//!   or an over-ceiling budget is answered with
//!   [`WireResponse::Rejected`] immediately — never clamped, since a
//!   clamped budget would silently change results.
//! * **Observability.** Queue depth, hot-set size, per-fingerprint hit
//!   counters, admission rejections all land in the daemon's `res-obs`
//!   journal under `serve.*`.

//! * **Live telemetry** ([`telemetry`]). Every request gets a
//!   deterministic id (`c<conn>.<seq>`) echoed in its answer and a
//!   `serve.req` span tree in the journal; wait-free latency
//!   histograms and a flight recorder of recent requests are served by
//!   the typed [`WireRequest::StatsQuery`] endpoint — answered inline,
//!   so it works even while the queue is rejecting work.

pub mod client;
pub mod hotstore;
pub mod server;
pub mod telemetry;
pub mod wire;

pub use client::TriageClient;
pub use hotstore::HotStore;
pub use server::{serve, ServeConfig, ServerHandle};
pub use telemetry::{Phases, RequestSummary, Telemetry};
pub use wire::{
    ServerStats, StatsRequest, StatsResponse, WireRequest, WireResponse, REQUEST_TAG, RESPONSE_TAG,
};
