//! The daemon's hot store: an LRU cache of open per-program
//! [`SolverStore`]s.
//!
//! A triage stream is heavily skewed — most reports are re-crashes of a
//! few programs — so the daemon keeps the most recently used programs'
//! stores *open and absorbed in memory* between requests instead of
//! paying open/absorb/commit per call (the deferred-commit contract of
//! [`res_core::search::ResEngine::synthesize_in_store`]). A store is
//! committed to its `res-store` file only when its program falls out of
//! the hot set, and at shutdown ([`HotStore::flush_all`]); the commit
//! runs the store's [`CompactionPolicy`], which is where the daemon's
//! automatic age/size/supersedure compaction fires (`store.compact.auto`
//! in the trace journal).
//!
//! Stores never change answers (see `res-store`'s determinism
//! argument), so the hot set is purely a performance artifact: any
//! request served warm returns byte-identical results to a cold direct
//! library call.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mvm_isa::Program;
use res_obs::Recorder;
use res_store::{program_fingerprint, CompactionPolicy, SolverStore};

/// One open store plus its LRU bookkeeping.
struct Slot {
    store: Arc<Mutex<SolverStore>>,
    last_used: u64,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The LRU cache of open per-program stores. Thread-safe: checkouts
/// hand out `Arc<Mutex<SolverStore>>`, so two workers triaging the
/// same program serialize on its store while distinct programs proceed
/// in parallel.
pub struct HotStore {
    dir: PathBuf,
    cap: usize,
    policy: CompactionPolicy,
    /// `serve.hot.*` metrics.
    rec: Recorder,
    /// Handed to each opened store, so store events (`store.commit`,
    /// `store.compact.auto`) land in the daemon's journal under the
    /// same names the library path uses.
    store_rec: Recorder,
    inner: Mutex<Inner>,
}

impl HotStore {
    /// A hot store over `dir` (one `<fingerprint>.resstore` file per
    /// program, the same layout `res_triage::store_path_for` uses)
    /// keeping at most `cap` programs warm. `recorder` is the daemon's
    /// root recorder.
    pub fn new(
        dir: impl Into<PathBuf>,
        cap: usize,
        policy: CompactionPolicy,
        recorder: &Recorder,
    ) -> HotStore {
        HotStore {
            dir: dir.into(),
            cap: cap.max(1),
            policy,
            rec: recorder.scoped("serve.hot"),
            store_rec: recorder.scoped("store"),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store for `program`, warm if present, opened (and absorbed
    /// on first use by the engine) if not. Opening may evict the least
    /// recently used store, committing it first.
    pub fn checkout(&self, program: &Program) -> Arc<Mutex<SolverStore>> {
        let fp = program_fingerprint(program);
        let mut inner = self.inner.lock().expect("hot-store lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&fp) {
            slot.last_used = tick;
            let store = Arc::clone(&slot.store);
            inner.hits += 1;
            self.rec.counter("hits", 1);
            self.rec.counter(&format!("hit.{fp:016x}"), 1);
            return store;
        }
        inner.misses += 1;
        self.rec.counter("misses", 1);
        self.rec.counter(&format!("miss.{fp:016x}"), 1);
        while inner.slots.len() >= self.cap {
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(fp, _)| *fp)
                .expect("non-empty hot set");
            let slot = inner.slots.remove(&victim).expect("victim present");
            // Commit what has been merged so far. A worker still holding
            // the evicted Arc can keep searching against it; results it
            // merges after this point stay memory-only for that Arc's
            // remaining life — the store is a cache, never ground truth.
            let _ = slot.store.lock().expect("store lock").commit();
            inner.evictions += 1;
            self.rec.counter("evictions", 1);
            self.rec
                .event_with("evict", || vec![("fp".into(), format!("{victim:016x}"))]);
        }
        let _ = std::fs::create_dir_all(&self.dir);
        let path = self.dir.join(format!("{fp:016x}.resstore"));
        let mut store = SolverStore::open_with(path, fp, self.store_rec.clone());
        store.set_compaction_policy(self.policy);
        let store = Arc::new(Mutex::new(store));
        inner.slots.insert(
            fp,
            Slot {
                store: Arc::clone(&store),
                last_used: tick,
            },
        );
        self.rec.gauge("programs", inner.slots.len() as u64);
        store
    }

    /// Commits every warm store (shutdown path). Returns how many
    /// commits succeeded.
    pub fn flush_all(&self) -> usize {
        let inner = self.inner.lock().expect("hot-store lock");
        inner
            .slots
            .values()
            .filter(|s| s.store.lock().expect("store lock").commit().is_ok())
            .count()
    }

    /// Programs currently warm.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("hot-store lock").slots.len()
    }

    /// `true` when nothing is warm.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, evictions)` so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().expect("hot-store lock");
        (inner.hits, inner.misses, inner.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{build, BugKind, WorkloadParams};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("res-serve-hot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkout_is_warm_on_the_second_request() {
        let dir = temp_dir("warm");
        let hot = HotStore::new(&dir, 2, CompactionPolicy::default(), &Recorder::disabled());
        let p = build(BugKind::DivByZero, WorkloadParams::default());
        let a = hot.checkout(&p);
        let b = hot.checkout(&p);
        assert!(Arc::ptr_eq(&a, &b), "same program, same open store");
        assert_eq!(hot.counters(), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_lru_and_commits_it() {
        let dir = temp_dir("evict");
        let hot = HotStore::new(&dir, 2, CompactionPolicy::default(), &Recorder::disabled());
        let progs: Vec<Program> = [
            BugKind::DivByZero,
            BugKind::UseAfterFree,
            BugKind::DoubleFree,
        ]
        .into_iter()
        .map(|k| build(k, WorkloadParams::default()))
        .collect();
        let first = hot.checkout(&progs[0]);
        // Dirty the second store so its eviction commit has something
        // to persist (clean commits are no-ops).
        hot.checkout(&progs[1]).lock().unwrap().note_hits(1);
        // Touch the first again so the second is the LRU victim.
        hot.checkout(&progs[0]);
        hot.checkout(&progs[2]);
        assert_eq!(hot.len(), 2);
        let (_, _, evictions) = hot.counters();
        assert_eq!(evictions, 1);
        // The evicted store's file exists on disk (the commit ran).
        let fp = program_fingerprint(&progs[1]);
        assert!(
            dir.join(format!("{fp:016x}.resstore")).exists(),
            "eviction must commit the store"
        );
        drop(first);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
