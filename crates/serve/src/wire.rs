//! The daemon's wire protocol: typed requests/responses over the
//! store's record framing.
//!
//! One message is one line: `<tag> <len> <fnv64-hex> <payload>\n`,
//! exactly the checksummed record convention `res-store` persists with
//! ([`res_store::encode_record`]/[`res_store::decode_record`]), under
//! two tags the store format reserves as unknown: `Q` for requests and
//! `R` for responses. Reusing the framing buys the protocol the store's
//! torn/corruption detection for free — a truncated or bit-flipped
//! message fails its length or checksum and is surfaced as an I/O
//! error instead of being half-parsed.
//!
//! Payloads are mvm-json: a [`WireRequest`] wraps the same
//! [`TriageRequest`] a library caller would construct, so the value a
//! daemon triages is *identical* to the value a direct
//! [`res_triage::triage`] call sees — the byte-identity contract the
//! lifecycle tests and `scripts/ci.sh` check is meaningful by
//! construction.
//!
//! Transport is a loopback TCP socket (`127.0.0.1:port`) or a unix
//! domain socket (`unix:/path`), chosen by address prefix.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use mvm_json::{json_enum, json_struct};
use res_core::HwVerdict;
use res_obs::HistoSnapshot;
use res_store::{decode_record, encode_record, Tag};
use res_triage::{TriageRequest, TriageResponse};

use crate::telemetry::RequestSummary;

/// The framing tag of every request line.
pub const REQUEST_TAG: Tag = Tag::Unknown(b'Q');
/// The framing tag of every response line.
pub const RESPONSE_TAG: Tag = Tag::Unknown(b'R');

/// Everything a client can ask the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Triage one coredump (§3.1 key + suffixes + full accounting).
    Triage(TriageRequest),
    /// The §3.1 batch endpoint: bucket keys for a report batch, in
    /// order. The whole batch occupies one queue slot.
    BucketBatch(Vec<TriageRequest>),
    /// The §3.2 batch endpoint: hardware-filter verdicts (relaxation
    /// sweeps included) for a report batch, in order.
    HwFilterBatch(Vec<TriageRequest>),
    /// Read the daemon's counters without queueing work.
    Stats,
    /// The full telemetry snapshot: counters plus latency histograms
    /// and the flight recorder, shaped by [`StatsRequest`]. Answered
    /// inline by the connection thread — no solver work, no queue slot
    /// — so it succeeds even when the daemon is rejecting work under
    /// backpressure.
    StatsQuery(StatsRequest),
    /// Stop accepting connections and begin draining.
    Shutdown,
}

json_enum!(WireRequest {
    Triage(TriageRequest),
    BucketBatch(Vec<TriageRequest>),
    HwFilterBatch(Vec<TriageRequest>),
    Stats,
    StatsQuery(StatsRequest),
    Shutdown
});

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// The triage result for one dump.
    Triage(TriageResponse),
    /// Bucket keys, one per batch item, in request order.
    BucketBatch(Vec<String>),
    /// §3.2 verdicts, one per batch item, in request order.
    HwFilterBatch(Vec<HwVerdict>),
    /// The daemon's counters.
    Stats(ServerStats),
    /// The full telemetry snapshot ([`WireRequest::StatsQuery`]).
    StatsReport(StatsResponse),
    /// Admission control refused the request; nothing was queued. The
    /// well-formed backpressure signal — clients retry or shed load.
    Rejected {
        /// Why (`"queue full"`, or which budget dimension exceeded the
        /// daemon's ceiling).
        reason: String,
        /// Jobs queued at rejection time.
        queue_depth: u64,
    },
    /// The daemon acknowledged [`WireRequest::Shutdown`].
    ShuttingDown,
    /// The request could not be served (malformed payload, internal
    /// error); the connection stays usable.
    Error(String),
}

json_enum!(WireResponse {
    Triage(TriageResponse),
    BucketBatch(Vec<String>),
    HwFilterBatch(Vec<HwVerdict>),
    Stats(ServerStats),
    StatsReport(StatsResponse),
    Rejected { reason: String, queue_depth: u64 },
    ShuttingDown,
    Error(String)
});

/// What a [`WireRequest::StatsQuery`] should include. Both flags off
/// still returns the counters and request/connection totals — the
/// cheapest liveness probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsRequest {
    /// Include the latency histogram snapshots (quantiles + buckets).
    pub histograms: bool,
    /// Include the flight recorder's recent-request ring.
    pub recent: bool,
}

json_struct!(StatsRequest { histograms, recent });

impl Default for StatsRequest {
    fn default() -> Self {
        StatsRequest {
            histograms: true,
            recent: true,
        }
    }
}

/// The full telemetry snapshot a daemon serves. Timing fields carry
/// wall-clock-derived values and belong to telemetry only; everything
/// a fixed request sequence determines survives
/// [`normalized`](StatsResponse::normalized), which is what the
/// determinism tests compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResponse {
    /// The counters (same payload as [`WireRequest::Stats`]).
    pub server: ServerStats,
    /// Microseconds since the daemon booted.
    pub uptime_us: u64,
    /// Requests read off the wire, all endpoints.
    pub requests: u64,
    /// Connections accepted.
    pub connections: u64,
    /// The `serve.slow` journaling threshold, µs (0 when disabled).
    pub slow_threshold_us: u64,
    /// Latency/fan-out histogram snapshots, sorted by name (empty when
    /// not requested).
    pub histograms: Vec<HistoSnapshot>,
    /// The flight recorder ring, oldest first (empty when not
    /// requested).
    pub recent: Vec<RequestSummary>,
}

json_struct!(StatsResponse {
    server,
    uptime_us,
    requests,
    connections,
    slow_threshold_us,
    histograms,
    recent
});

impl StatsResponse {
    /// This snapshot with every wall-clock-derived field zeroed:
    /// uptime, queue depth (scheduling-dependent), histogram timing
    /// fields and bucket shapes, and per-request durations. What
    /// remains — request counts, ids, endpoints, outcomes, histogram
    /// names and observation counts — is deterministic for a fixed
    /// request sequence, regardless of worker count or machine speed.
    pub fn normalized(&self) -> StatsResponse {
        let mut server = self.server;
        server.queue_depth = 0;
        StatsResponse {
            server,
            uptime_us: 0,
            requests: self.requests,
            connections: self.connections,
            slow_threshold_us: self.slow_threshold_us,
            histograms: self.histograms.iter().map(|h| h.normalized()).collect(),
            recent: self.recent.iter().map(|r| r.normalized()).collect(),
        }
    }
}

/// The daemon's observable state, as served by [`WireRequest::Stats`].
/// Mirrors the `serve.*` gauges/counters in the trace journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs waiting in the ingest queue right now.
    pub queue_depth: u64,
    /// The queue's capacity (admission rejects beyond it).
    pub queue_cap: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Programs currently warm in the hot store.
    pub hot_programs: u64,
    /// Checkouts served by an already-warm store.
    pub hot_hits: u64,
    /// Checkouts that had to open (or create) a store.
    pub hot_misses: u64,
    /// Warm stores evicted (and committed) to honor the capacity.
    pub hot_evictions: u64,
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs refused because the queue was full.
    pub rejected_queue: u64,
    /// Jobs refused because their budget exceeded the daemon's ceiling.
    pub rejected_budget: u64,
    /// Jobs fully processed and answered.
    pub completed: u64,
}

json_struct!(ServerStats {
    queue_depth,
    queue_cap,
    workers,
    hot_programs,
    hot_hits,
    hot_misses,
    hot_evictions,
    admitted,
    rejected_queue,
    rejected_budget,
    completed
});

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one framed message and flushes it.
pub fn write_frame(w: &mut impl Write, tag: Tag, payload: &str) -> io::Result<()> {
    let mut line = Vec::with_capacity(payload.len() + 32);
    encode_record(tag, payload, &mut line);
    w.write_all(&line)?;
    w.flush()
}

/// Reads one framed message, checking the expected `tag`. `Ok(None)`
/// is a clean EOF (peer closed between messages); a torn or corrupt
/// line is an [`io::ErrorKind::InvalidData`] error.
pub fn read_frame(r: &mut impl BufRead, tag: Tag) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim_end_matches('\n');
    match decode_record(trimmed) {
        Some((got, payload)) if got == tag => Ok(Some(payload.to_string())),
        Some((got, _)) => Err(bad_data(format!("unexpected frame tag {got:?}"))),
        None => Err(bad_data("corrupt frame (framing or checksum)")),
    }
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, req: &WireRequest) -> io::Result<()> {
    write_frame(w, REQUEST_TAG, &mvm_json::to_string(req))
}

/// Reads one request frame (`Ok(None)` on clean EOF).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<WireRequest>> {
    match read_frame(r, REQUEST_TAG)? {
        None => Ok(None),
        Some(payload) => mvm_json::from_str(&payload)
            .map(Some)
            .map_err(|e| bad_data(format!("request payload: {}", e.message))),
    }
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &WireResponse) -> io::Result<()> {
    write_frame(w, RESPONSE_TAG, &mvm_json::to_string(resp))
}

/// Reads one response frame (`Ok(None)` on clean EOF).
pub fn read_response(r: &mut impl BufRead) -> io::Result<Option<WireResponse>> {
    match read_frame(r, RESPONSE_TAG)? {
        None => Ok(None),
        Some(payload) => mvm_json::from_str(&payload)
            .map(Some)
            .map_err(|e| bad_data(format!("response payload: {}", e.message))),
    }
}

/// A bound listening socket: loopback TCP, or unix-domain when the
/// address starts with `unix:`.
pub enum Listener {
    /// A TCP listener (addresses like `127.0.0.1:0`).
    Tcp(TcpListener),
    /// A unix-domain listener (`unix:/path/to.sock`); the path plus the
    /// listener, so the socket file can be reported back.
    #[cfg(unix)]
    Unix(PathBuf, UnixListener),
}

impl Listener {
    /// Binds `addr`. A stale unix socket file at the path is removed
    /// first (the daemon owns its socket path).
    pub fn bind(addr: &str) -> io::Result<Listener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let path = PathBuf::from(path);
                let _ = std::fs::remove_file(&path);
                return Ok(Listener::Unix(path.clone(), UnixListener::bind(path)?));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// The bound address, in the same syntax [`Listener::bind`] and
    /// [`Conn::connect`] accept (so `bind("127.0.0.1:0")` reports the
    /// actual port).
    pub fn local_addr(&self) -> io::Result<String> {
        match self {
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            #[cfg(unix)]
            Listener::Unix(path, _) => Ok(format!("unix:{}", path.display())),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(_, l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(path, _) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One connected stream, TCP or unix-domain.
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr` (same syntax as [`Listener::bind`]).
    pub fn connect(addr: &str) -> io::Result<Conn> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Conn::Unix(UnixStream::connect(path)?));
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        Ok(Conn::Tcp(TcpStream::connect(addr)?))
    }

    /// An independently-owned handle to the same stream (for split
    /// read/write halves).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let req = WireRequest::Stats;
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(req));
        assert_eq!(read_request(&mut r).unwrap(), None, "clean EOF");

        // Flip one payload byte: the checksum must catch it.
        let mut torn = buf.clone();
        let last = torn.len() - 2;
        torn[last] ^= 0x01;
        let err = read_request(&mut BufReader::new(&torn[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A response frame where a request is expected is rejected.
        let mut resp_bytes = Vec::new();
        write_response(&mut resp_bytes, &WireResponse::ShuttingDown).unwrap();
        let err = read_request(&mut BufReader::new(&resp_bytes[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = WireResponse::Stats(ServerStats {
            queue_depth: 2,
            queue_cap: 8,
            workers: 3,
            hot_programs: 1,
            hot_hits: 5,
            hot_misses: 2,
            hot_evictions: 1,
            admitted: 9,
            rejected_queue: 4,
            rejected_budget: 1,
            completed: 7,
        });
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, Some(resp));
    }

    #[test]
    fn stats_query_and_report_round_trip() {
        let req = WireRequest::StatsQuery(StatsRequest::default());
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert_eq!(
            read_request(&mut BufReader::new(&buf[..])).unwrap(),
            Some(req)
        );

        let resp = WireResponse::StatsReport(StatsResponse {
            server: ServerStats {
                completed: 3,
                ..ServerStats::default()
            },
            uptime_us: 99,
            requests: 7,
            connections: 2,
            slow_threshold_us: 50_000,
            histograms: vec![HistoSnapshot {
                name: "serve.rtt.triage_us".into(),
                count: 3,
                sum: 30,
                min: 5,
                max: 20,
                p50: 7,
                p95: 20,
                p99: 20,
                buckets: vec![0, 0, 0, 1, 1, 1],
            }],
            recent: vec![RequestSummary {
                req_id: "c1.0".into(),
                endpoint: "triage".into(),
                outcome: "ok".into(),
                total_us: 10,
                queue_wait_us: 1,
                synth_us: 8,
                store_us: 1,
            }],
        });
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, Some(resp));
    }

    #[test]
    fn normalized_zeroes_only_timing_fields() {
        let resp = StatsResponse {
            server: ServerStats {
                queue_depth: 3,
                admitted: 5,
                ..ServerStats::default()
            },
            uptime_us: 12345,
            requests: 6,
            connections: 2,
            slow_threshold_us: 1000,
            histograms: vec![HistoSnapshot {
                name: "h".into(),
                count: 4,
                sum: 99,
                min: 1,
                max: 50,
                p50: 3,
                p95: 50,
                p99: 50,
                buckets: vec![1, 1, 2],
            }],
            recent: vec![RequestSummary {
                req_id: "c1.0".into(),
                endpoint: "triage".into(),
                outcome: "ok".into(),
                total_us: 77,
                queue_wait_us: 7,
                synth_us: 60,
                store_us: 10,
            }],
        };
        let n = resp.normalized();
        assert_eq!(n.server.queue_depth, 0, "scheduling-dependent");
        assert_eq!(n.server.admitted, 5, "deterministic counters survive");
        assert_eq!(n.uptime_us, 0);
        assert_eq!((n.requests, n.connections), (6, 2));
        assert_eq!(n.histograms[0].count, 4);
        assert_eq!(n.histograms[0].sum, 0);
        assert_eq!(n.recent[0].req_id, "c1.0");
        assert_eq!(n.recent[0].total_us, 0);
    }

    #[test]
    fn rejection_carries_reason_and_depth() {
        let resp = WireResponse::Rejected {
            reason: "queue full".into(),
            queue_depth: 8,
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, Some(resp));
    }
}
