//! The typed client: one connection, framed request/response pairs.

use std::io::{self, BufReader};

use res_core::HwVerdict;
use res_triage::{TriageRequest, TriageResponse};

use crate::wire::{
    read_response, write_request, Conn, ServerStats, StatsRequest, StatsResponse, WireRequest,
    WireResponse,
};

fn unexpected(resp: WireResponse) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

/// A connected triage client. Requests are answered in order on one
/// connection; open several clients for concurrent submission.
pub struct TriageClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl TriageClient {
    /// Connects to a daemon at `addr` (`127.0.0.1:port` or
    /// `unix:/path`).
    pub fn connect(addr: &str) -> io::Result<TriageClient> {
        let conn = Conn::connect(addr)?;
        let reader = BufReader::new(conn.try_clone()?);
        Ok(TriageClient {
            reader,
            writer: conn,
        })
    }

    /// Sends one request without waiting for the answer (pipelining;
    /// pair with [`recv`](TriageClient::recv)).
    pub fn send(&mut self, req: &WireRequest) -> io::Result<()> {
        write_request(&mut self.writer, req)
    }

    /// Receives the next response; EOF is an error (a client that sent
    /// a request is owed an answer).
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        read_response(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// One request, one response.
    pub fn call(&mut self, req: &WireRequest) -> io::Result<WireResponse> {
        self.send(req)?;
        self.recv()
    }

    /// Triage one dump. A [`WireResponse::Rejected`] backpressure
    /// answer is returned as `Err(resp)` so callers must handle it.
    pub fn triage(
        &mut self,
        req: TriageRequest,
    ) -> io::Result<Result<TriageResponse, WireResponse>> {
        match self.call(&WireRequest::Triage(req))? {
            WireResponse::Triage(resp) => Ok(Ok(resp)),
            other @ (WireResponse::Rejected { .. } | WireResponse::ShuttingDown) => Ok(Err(other)),
            other => Err(unexpected(other)),
        }
    }

    /// §3.1 batch: bucket keys in request order.
    pub fn bucket_batch(
        &mut self,
        reqs: Vec<TriageRequest>,
    ) -> io::Result<Result<Vec<String>, WireResponse>> {
        match self.call(&WireRequest::BucketBatch(reqs))? {
            WireResponse::BucketBatch(keys) => Ok(Ok(keys)),
            other @ (WireResponse::Rejected { .. } | WireResponse::ShuttingDown) => Ok(Err(other)),
            other => Err(unexpected(other)),
        }
    }

    /// §3.2 batch: hardware-filter verdicts in request order.
    pub fn hw_filter_batch(
        &mut self,
        reqs: Vec<TriageRequest>,
    ) -> io::Result<Result<Vec<HwVerdict>, WireResponse>> {
        match self.call(&WireRequest::HwFilterBatch(reqs))? {
            WireResponse::HwFilterBatch(vs) => Ok(Ok(vs)),
            other @ (WireResponse::Rejected { .. } | WireResponse::ShuttingDown) => Ok(Err(other)),
            other => Err(unexpected(other)),
        }
    }

    /// The daemon's counters.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.call(&WireRequest::Stats)? {
            WireResponse::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// The full telemetry snapshot: counters, latency histograms, and
    /// the flight recorder, shaped by `q`. Answered inline by the
    /// daemon (no queue slot), so it works even under backpressure.
    pub fn stats_query(&mut self, q: &StatsRequest) -> io::Result<StatsResponse> {
        match self.call(&WireRequest::StatsQuery(*q))? {
            WireResponse::StatsReport(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to stop accepting work.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}
