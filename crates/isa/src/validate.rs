//! Structural validation of MicroVM programs.
//!
//! The RES engine assumes an *accurate* CFG (the paper's §6 explicitly
//! scopes out corrupted control flow), so every program is validated
//! before execution or analysis: block references must resolve, register
//! indices must be in range, call arities must match, and the entry
//! function must take no arguments.

use crate::inst::{Inst, Operand, Reg, Terminator};
use crate::program::{BlockId, FuncId, Program};

/// An error found while validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program has no entry function.
    NoEntry,
    /// The entry function must have arity 0.
    EntryHasArgs,
    /// A function has no blocks.
    EmptyFunction {
        /// Offending function.
        func: FuncId,
    },
    /// A terminator references a block that does not exist.
    DanglingBlock {
        /// Function containing the reference.
        func: FuncId,
        /// Block whose terminator is bad.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// A call or spawn references a function that does not exist.
    DanglingFunc {
        /// Function containing the reference.
        func: FuncId,
        /// Block containing the reference.
        block: BlockId,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Caller.
        func: FuncId,
        /// Block containing the call.
        block: BlockId,
        /// Callee.
        callee: FuncId,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// A register index is out of range.
    BadRegister {
        /// Function containing the instruction.
        func: FuncId,
        /// Block containing the instruction.
        block: BlockId,
        /// The offending register.
        reg: Reg,
    },
    /// A global reference does not resolve.
    DanglingGlobal {
        /// Function containing the reference.
        func: FuncId,
        /// Block containing the reference.
        block: BlockId,
    },
    /// A spawned thread entry must have arity exactly 1.
    SpawnArity {
        /// Function containing the spawn.
        func: FuncId,
        /// Spawned entry function.
        callee: FuncId,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::NoEntry => write!(f, "program has no entry function"),
            ValidateError::EntryHasArgs => write!(f, "entry function must take no arguments"),
            ValidateError::EmptyFunction { func } => {
                write!(f, "function f{} has no blocks", func.0)
            }
            ValidateError::DanglingBlock {
                func,
                block,
                target,
            } => write!(
                f,
                "f{}:b{} references missing block b{}",
                func.0, block.0, target.0
            ),
            ValidateError::DanglingFunc { func, block } => {
                write!(f, "f{}:b{} references a missing function", func.0, block.0)
            }
            ValidateError::ArityMismatch {
                func,
                block,
                callee,
                expected,
                got,
            } => write!(
                f,
                "f{}:b{} calls f{} with {got} args, expected {expected}",
                func.0, block.0, callee.0
            ),
            ValidateError::BadRegister { func, block, reg } => {
                write!(
                    f,
                    "f{}:b{} uses out-of-range register {reg}",
                    func.0, block.0
                )
            }
            ValidateError::DanglingGlobal { func, block } => {
                write!(f, "f{}:b{} references a missing global", func.0, block.0)
            }
            ValidateError::SpawnArity { func, callee } => write!(
                f,
                "f{} spawns f{}, which must have arity 1",
                func.0, callee.0
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

fn check_reg(r: Reg, func: FuncId, block: BlockId) -> Result<(), ValidateError> {
    if r.index() < Reg::COUNT {
        Ok(())
    } else {
        Err(ValidateError::BadRegister {
            func,
            block,
            reg: r,
        })
    }
}

fn check_operand(op: Operand, func: FuncId, block: BlockId) -> Result<(), ValidateError> {
    match op {
        Operand::Reg(r) => check_reg(r, func, block),
        Operand::Imm(_) => Ok(()),
    }
}

/// Validates a whole program.
///
/// # Errors
///
/// Returns the first [`ValidateError`] encountered.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    if program.entry.0 as usize >= program.funcs.len() {
        return Err(ValidateError::NoEntry);
    }
    if program.func(program.entry).arity != 0 {
        return Err(ValidateError::EntryHasArgs);
    }
    for (fid, func) in program.iter_funcs() {
        if func.blocks.is_empty() {
            return Err(ValidateError::EmptyFunction { func: fid });
        }
        for (bid, block) in func.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.def_reg() {
                    check_reg(d, fid, bid)?;
                }
                for u in inst.used_regs() {
                    check_reg(u, fid, bid)?;
                }
                match inst {
                    Inst::AddrOf { global, .. } => {
                        if global.0 as usize >= program.globals.len() {
                            return Err(ValidateError::DanglingGlobal {
                                func: fid,
                                block: bid,
                            });
                        }
                    }
                    Inst::Spawn { func: callee, .. } => {
                        let Some(cf) = program.funcs.get(callee.0 as usize) else {
                            return Err(ValidateError::DanglingFunc {
                                func: fid,
                                block: bid,
                            });
                        };
                        if cf.arity != 1 {
                            return Err(ValidateError::SpawnArity {
                                func: fid,
                                callee: *callee,
                            });
                        }
                    }
                    _ => {}
                }
            }
            let term = &block.terminator;
            for u in term.used_regs() {
                check_reg(u, fid, bid)?;
            }
            for target in term.successors() {
                if target.0 as usize >= func.blocks.len() {
                    return Err(ValidateError::DanglingBlock {
                        func: fid,
                        block: bid,
                        target,
                    });
                }
            }
            if let Terminator::Call {
                func: callee,
                args,
                ret,
                ..
            } = term
            {
                let Some(cf) = program.funcs.get(callee.0 as usize) else {
                    return Err(ValidateError::DanglingFunc {
                        func: fid,
                        block: bid,
                    });
                };
                if cf.arity != args.len() {
                    return Err(ValidateError::ArityMismatch {
                        func: fid,
                        block: bid,
                        callee: *callee,
                        expected: cf.arity,
                        got: args.len(),
                    });
                }
                for a in args {
                    check_operand(*a, fid, bid)?;
                }
                if let Some(r) = ret {
                    check_reg(*r, fid, bid)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Operand, Terminator};
    use crate::program::{BasicBlock, Function, Global, GlobalId};

    fn prog_with_main(blocks: Vec<BasicBlock>) -> Program {
        let mut p = Program {
            funcs: vec![Function {
                name: "main".into(),
                arity: 0,
                blocks,
            }],
            globals: vec![Global {
                name: "g".into(),
                size: 8,
                addr: 0,
                init: vec![],
            }],
            entry: FuncId(0),
        };
        p.assign_addresses();
        p
    }

    #[test]
    fn valid_minimal_program() {
        let p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![],
            terminator: Terminator::Halt,
        }]);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn dangling_block_rejected() {
        let p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![],
            terminator: Terminator::Jump(BlockId(9)),
        }]);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::DanglingBlock { .. })
        ));
    }

    #[test]
    fn bad_register_rejected() {
        let p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![Inst::Mov {
                dst: Reg(200),
                src: Operand::Imm(0),
            }],
            terminator: Terminator::Halt,
        }]);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::BadRegister { .. })
        ));
    }

    #[test]
    fn dangling_global_rejected() {
        let p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![Inst::AddrOf {
                dst: Reg(0),
                global: GlobalId(7),
            }],
            terminator: Terminator::Halt,
        }]);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::DanglingGlobal { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![],
            terminator: Terminator::Call {
                func: FuncId(1),
                args: vec![],
                ret: None,
                cont: BlockId(0),
            },
        }]);
        p.funcs.push(Function {
            name: "callee".into(),
            arity: 2,
            blocks: vec![BasicBlock {
                label: "entry".into(),
                insts: vec![],
                terminator: Terminator::Return(None),
            }],
        });
        assert!(matches!(
            validate(&p),
            Err(ValidateError::ArityMismatch {
                expected: 2,
                got: 0,
                ..
            })
        ));
    }

    #[test]
    fn entry_with_args_rejected() {
        let mut p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![],
            terminator: Terminator::Halt,
        }]);
        p.funcs[0].arity = 1;
        assert_eq!(validate(&p), Err(ValidateError::EntryHasArgs));
    }

    #[test]
    fn spawn_arity_enforced() {
        let mut p = prog_with_main(vec![BasicBlock {
            label: "entry".into(),
            insts: vec![Inst::Spawn {
                dst: Reg(0),
                func: FuncId(1),
                arg: Operand::Imm(0),
            }],
            terminator: Terminator::Halt,
        }]);
        p.funcs.push(Function {
            name: "worker".into(),
            arity: 0,
            blocks: vec![BasicBlock {
                label: "entry".into(),
                insts: vec![],
                terminator: Terminator::Halt,
            }],
        });
        assert!(matches!(
            validate(&p),
            Err(ValidateError::SpawnArity { .. })
        ));
    }
}
