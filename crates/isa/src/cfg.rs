//! Control-flow-graph and call-graph utilities.
//!
//! RES navigates the CFG *backward* (paper §2.3: "RES starts from the
//! coredump and navigates P's control-flow graph backward until it
//! reaches a basic block that has at least two predecessors"), so the
//! predecessor map is the workhorse here. The call graph supports
//! interprocedural steps: at a function's entry block the backward
//! predecessors are its call sites, and at a call continuation block the
//! predecessor is the callee's returning block(s).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::inst::Terminator;
use crate::program::{BlockId, FuncId, Function, Program};

/// Intra-procedural control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of a function from its terminators.
    pub fn build(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            for s in block.terminator.successors() {
                succs[bid.0 as usize].push(s);
                preds[s.0 as usize].push(bid);
            }
        }
        Cfg { preds, succs }
    }

    /// Number of blocks in the function.
    pub fn block_count(&self) -> usize {
        self.preds.len()
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Blocks unreachable from the entry (useful to diagnose generated
    /// workloads).
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.block_count()];
        let mut queue = VecDeque::from([BlockId(0)]);
        seen[0] = true;
        while let Some(b) = queue.pop_front() {
            for &s in self.succs(b) {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    queue.push_back(s);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| !v)
            .map(|(i, _)| BlockId(i as u32))
            .collect()
    }

    /// Returns `true` if `b` is a control-flow join (at least two
    /// predecessors) — the points where RES must form predecessor
    /// hypotheses.
    pub fn is_join(&self, b: BlockId) -> bool {
        self.preds(b).len() >= 2
    }
}

/// A call site: which block of which function calls (or spawns) a callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// Calling function.
    pub caller: FuncId,
    /// Block whose terminator performs the call (or, for spawns, the
    /// block containing the spawn instruction).
    pub block: BlockId,
    /// `true` if this is a thread spawn rather than a call.
    pub is_spawn: bool,
}

/// Whole-program call graph plus per-function CFGs.
#[derive(Debug, Clone)]
pub struct CallGraph {
    cfgs: Vec<Cfg>,
    callers: HashMap<FuncId, Vec<CallSite>>,
    returns: Vec<Vec<BlockId>>,
}

impl CallGraph {
    /// Builds CFGs and the call graph for the whole program.
    pub fn build(program: &Program) -> Self {
        let cfgs = program.funcs.iter().map(Cfg::build).collect();
        let mut callers: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
        let mut returns = Vec::with_capacity(program.funcs.len());
        for (fid, func) in program.iter_funcs() {
            let mut rets = Vec::new();
            for (bid, block) in func.iter_blocks() {
                match &block.terminator {
                    Terminator::Call { func: callee, .. } => {
                        callers.entry(*callee).or_default().push(CallSite {
                            caller: fid,
                            block: bid,
                            is_spawn: false,
                        });
                    }
                    Terminator::Return(_) => rets.push(bid),
                    _ => {}
                }
                for inst in &block.insts {
                    if let crate::inst::Inst::Spawn { func: callee, .. } = inst {
                        callers.entry(*callee).or_default().push(CallSite {
                            caller: fid,
                            block: bid,
                            is_spawn: true,
                        });
                    }
                }
            }
            returns.push(rets);
        }
        CallGraph {
            cfgs,
            callers,
            returns,
        }
    }

    /// The CFG of a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cfg(&self, f: FuncId) -> &Cfg {
        &self.cfgs[f.0 as usize]
    }

    /// All sites that call or spawn `f`.
    pub fn callers_of(&self, f: FuncId) -> &[CallSite] {
        self.callers.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Blocks of `f` that end in `Return`.
    pub fn returning_blocks(&self, f: FuncId) -> &[BlockId] {
        &self.returns[f.0 as usize]
    }

    /// Functions transitively reachable from `from` through calls and
    /// spawns.
    pub fn reachable_funcs(&self, program: &Program, from: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(f) = queue.pop_front() {
            for block in &program.func(f).blocks {
                let mut visit = |callee: FuncId| {
                    if seen.insert(callee) {
                        queue.push_back(callee);
                    }
                };
                if let Terminator::Call { func: callee, .. } = &block.terminator {
                    visit(*callee);
                }
                for inst in &block.insts {
                    if let crate::inst::Inst::Spawn { func: callee, .. } = inst {
                        visit(*callee);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Operand, Reg};

    /// A diamond: entry -> (then|else) -> join.
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_func("main", 0);
        let f = pb.func_mut(main);
        let entry = f.block("entry");
        let then_b = f.block("then");
        let else_b = f.block("else");
        let join = f.block("join");
        f.select(entry);
        f.mov(Reg(0), 1u64);
        f.branch(Reg(0), then_b, else_b);
        f.select(then_b);
        f.jump(join);
        f.select(else_b);
        f.jump(join);
        f.select(join);
        f.halt();
        pb.finish().unwrap()
    }

    #[test]
    fn diamond_preds_and_joins() {
        let p = diamond();
        let cfg = Cfg::build(p.func(p.entry));
        let join = p.func(p.entry).block_by_label("join").unwrap();
        assert_eq!(cfg.preds(join).len(), 2);
        assert!(cfg.is_join(join));
        let entry = BlockId(0);
        assert!(cfg.preds(entry).is_empty());
        assert_eq!(cfg.succs(entry).len(), 2);
        assert!(cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn unreachable_block_detected() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_func("main", 0);
        let f = pb.func_mut(main);
        let entry = f.block("entry");
        let dead = f.block("dead");
        f.select(entry);
        f.halt();
        f.select(dead);
        f.halt();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(p.func(p.entry));
        assert_eq!(cfg.unreachable_blocks(), vec![dead]);
    }

    #[test]
    fn call_graph_tracks_callers_and_returns() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_func("callee", 1);
        {
            let f = pb.func_mut(callee);
            let e = f.block("entry");
            f.select(e);
            f.ret(Some(Operand::Reg(Reg(0))));
        }
        let main = pb.declare_func("main", 0);
        {
            let f = pb.func_mut(main);
            let e = f.block("entry");
            let c = f.block("cont");
            f.select(e);
            f.call(callee, vec![Operand::Imm(3)], Some(Reg(1)), c);
            f.select(c);
            f.halt();
        }
        let p = pb.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = cg.callers_of(callee);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].caller, main);
        assert!(!sites[0].is_spawn);
        assert_eq!(cg.returning_blocks(callee), &[BlockId(0)]);
        let reach = cg.reachable_funcs(&p, main);
        assert!(reach.contains(&callee) && reach.contains(&main));
    }

    #[test]
    fn spawn_recorded_as_caller() {
        let mut pb = ProgramBuilder::new();
        let worker = pb.declare_func("worker", 1);
        {
            let f = pb.func_mut(worker);
            let e = f.block("entry");
            f.select(e);
            f.halt();
        }
        let main = pb.declare_func("main", 0);
        {
            let f = pb.func_mut(main);
            let e = f.block("entry");
            f.select(e);
            f.spawn(Reg(0), worker, 0u64);
            f.halt();
        }
        let p = pb.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = cg.callers_of(worker);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].is_spawn);
    }
}
