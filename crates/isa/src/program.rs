//! Program containers: functions, basic blocks, globals, code locations.

use mvm_json::{json_newtype, json_struct};

use crate::inst::{Inst, Terminator};
use crate::layout;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A code location: function, block, and instruction index.
///
/// `inst == block.insts.len()` denotes the block's terminator. This is
/// the MicroVM's program counter and the unit in which coredumps report
/// where each thread stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// Containing function.
    pub func: FuncId,
    /// Containing basic block.
    pub block: BlockId,
    /// Instruction index within the block; the terminator sits at
    /// `insts.len()`.
    pub inst: u32,
}

impl Loc {
    /// A location at the start of the given block.
    pub fn block_start(func: FuncId, block: BlockId) -> Self {
        Loc {
            func,
            block,
            inst: 0,
        }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}:b{}:i{}", self.func.0, self.block.0, self.inst)
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Human-readable label (unique within the function).
    pub label: String,
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// The unique control-flow transfer ending the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Number of execution steps in this block including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len() + 1
    }

    /// Returns `true` if the block has no straight-line instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A function: named, with declared arity and a block list.
///
/// Block 0 is the entry block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of arguments, delivered in `r0..r{arity-1}`.
    pub arity: usize,
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Access a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; ids obtained from the same
    /// program are always valid.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Looks up a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .map(|i| BlockId(i as u32))
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A global variable with a fixed address and byte-level initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name (unique within the program).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Assigned virtual address (set by [`Program::assign_addresses`]).
    pub addr: u64,
    /// Initial contents; shorter than `size` means zero-filled tail.
    pub init: Vec<u8>,
}

/// A complete MicroVM program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions; indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// All globals; indexed by [`GlobalId`], with assigned addresses.
    pub globals: Vec<Global>,
    /// The program entry function (conventionally `main`).
    pub entry: FuncId,
}

impl Program {
    /// Access a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; ids obtained from the same
    /// program are always valid.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Access a global by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Looks up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Finds the global (if any) whose assigned range contains `addr`.
    pub fn global_at(&self, addr: u64) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| addr >= g.addr && addr < g.addr + g.size)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Access the basic block at a code location.
    ///
    /// # Panics
    ///
    /// Panics if the location's function or block id is out of range.
    pub fn block_at(&self, loc: Loc) -> &BasicBlock {
        self.func(loc.func).block(loc.block)
    }

    /// Assigns addresses to globals in declaration order, 8-byte aligned,
    /// starting at [`layout::GLOBAL_BASE`].
    ///
    /// Builders call this automatically; it is idempotent.
    pub fn assign_addresses(&mut self) {
        let mut addr = layout::GLOBAL_BASE;
        for g in &mut self.globals {
            g.addr = addr;
            let sz = g.size.max(1);
            addr += (sz + 7) & !7;
        }
    }

    /// Total number of instructions (including terminators) in the
    /// program — a rough size metric used by the experiments.
    pub fn code_size(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.len()).sum::<usize>())
            .sum()
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

// JSON wire format (see `mvm_json`); ids serialize as bare integers.
json_newtype!(FuncId);
json_newtype!(BlockId);
json_newtype!(GlobalId);
json_struct!(Loc { func, block, inst });
json_struct!(BasicBlock {
    label,
    insts,
    terminator
});
json_struct!(Function {
    name,
    arity,
    blocks
});
json_struct!(Global {
    name,
    size,
    addr,
    init
});
json_struct!(Program {
    funcs,
    globals,
    entry
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;

    fn tiny() -> Program {
        let mut p = Program {
            funcs: vec![Function {
                name: "main".into(),
                arity: 0,
                blocks: vec![BasicBlock {
                    label: "entry".into(),
                    insts: vec![],
                    terminator: Terminator::Halt,
                }],
            }],
            globals: vec![
                Global {
                    name: "a".into(),
                    size: 12,
                    addr: 0,
                    init: vec![1, 2, 3],
                },
                Global {
                    name: "b".into(),
                    size: 8,
                    addr: 0,
                    init: vec![],
                },
            ],
            entry: FuncId(0),
        };
        p.assign_addresses();
        p
    }

    #[test]
    fn address_assignment_is_aligned_and_disjoint() {
        let p = tiny();
        let a = p.global(GlobalId(0));
        let b = p.global(GlobalId(1));
        assert_eq!(a.addr, layout::GLOBAL_BASE);
        assert_eq!(a.addr % 8, 0);
        // 12 rounds up to 16.
        assert_eq!(b.addr, layout::GLOBAL_BASE + 16);
    }

    #[test]
    fn global_at_finds_containing_global() {
        let p = tiny();
        let (gid, g) = p.global_at(layout::GLOBAL_BASE + 5).unwrap();
        assert_eq!(gid, GlobalId(0));
        assert_eq!(g.name, "a");
        assert!(p.global_at(layout::GLOBAL_BASE + 13).is_none());
        assert!(p.global_at(0).is_none());
    }

    #[test]
    fn lookups_by_name() {
        let p = tiny();
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("nope"), None);
        assert_eq!(p.global_by_name("b"), Some(GlobalId(1)));
    }

    #[test]
    fn code_size_counts_terminators() {
        let p = tiny();
        assert_eq!(p.code_size(), 1);
    }

    #[test]
    fn loc_display_and_order() {
        let l1 = Loc {
            func: FuncId(0),
            block: BlockId(1),
            inst: 2,
        };
        assert_eq!(l1.to_string(), "f0:b1:i2");
        let l0 = Loc::block_start(FuncId(0), BlockId(1));
        assert!(l0 < l1);
    }
}
