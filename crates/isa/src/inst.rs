//! Instruction and terminator definitions for the MicroVM ISA.
//!
//! The ISA is deliberately RISC-like: all arithmetic happens between
//! registers and immediates, memory is touched only through [`Inst::Load`]
//! and [`Inst::Store`], and control flow is confined to block
//! [`Terminator`]s. This regularity is what makes per-block reverse
//! analysis (write sets, havocking, forward re-execution) tractable for
//! the RES engine.

use mvm_json::{json_enum, json_newtype};

use crate::program::{BlockId, FuncId, GlobalId};

/// A general-purpose register.
///
/// The MicroVM exposes [`Reg::COUNT`] 64-bit registers per thread,
/// `r0`..`r31`. By calling convention, arguments arrive in `r0..rN` and a
/// function's return value is produced by its `ret` terminator rather
/// than a dedicated register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of general-purpose registers per thread.
    pub const COUNT: usize = 32;

    /// Returns the register's index as a `usize` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Either a register or a 64-bit immediate.
///
/// Allowing immediates directly in instruction operands keeps the
/// synthetic workload programs compact without a separate `li`-style
/// materialization step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A literal 64-bit constant.
    Imm(u64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Access width of a memory operation, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    W1,
    /// Two bytes.
    W2,
    /// Four bytes.
    W4,
    /// Eight bytes (a full machine word).
    W8,
}

impl Width {
    /// The width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Mask selecting the low `bytes()*8` bits of a word.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            Width::W1 => 0xff,
            Width::W2 => 0xffff,
            Width::W4 => 0xffff_ffff,
            Width::W8 => u64::MAX,
        }
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Two-operand ALU operations.
///
/// Comparison operators produce `1` or `0` in the destination register;
/// there are no condition flags. Signedness is explicit in the operator
/// (`LtS` vs `LtU`), mirroring LLVM's `icmp` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; divide-by-zero faults the machine.
    DivU,
    /// Unsigned remainder; divide-by-zero faults the machine.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar,
    /// Equality comparison, producing 0 or 1.
    Eq,
    /// Inequality comparison, producing 0 or 1.
    Ne,
    /// Unsigned less-than, producing 0 or 1.
    LtU,
    /// Unsigned less-or-equal, producing 0 or 1.
    LeU,
    /// Signed less-than, producing 0 or 1.
    LtS,
    /// Signed less-or-equal, producing 0 or 1.
    LeS,
}

impl BinOp {
    /// Returns `true` for the comparison operators that yield 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::LtU | BinOp::LeU | BinOp::LtS | BinOp::LeS
        )
    }

    /// Evaluates the operation on concrete values.
    ///
    /// Division and remainder by zero return `None`; the machine turns
    /// that into a fault.
    pub fn eval(self, a: u64, b: u64) -> Option<u64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivU => a.checked_div(b)?,
            BinOp::RemU => a.checked_rem(b)?,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::Sar => (a as i64).wrapping_shr(b as u32) as u64,
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::LtU => u64::from(a < b),
            BinOp::LeU => u64::from(a <= b),
            BinOp::LtS => u64::from((a as i64) < (b as i64)),
            BinOp::LeS => u64::from((a as i64) <= (b as i64)),
        })
    }

    /// The assembler mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivU => "divu",
            BinOp::RemU => "remu",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::LtU => "ltu",
            BinOp::LeU => "leu",
            BinOp::LtS => "lts",
            BinOp::LeS => "les",
        }
    }
}

/// One-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise negation.
    Not,
    /// Two's-complement negation.
    Neg,
}

impl UnOp {
    /// Evaluates the operation on a concrete value.
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnOp::Not => !a,
            UnOp::Neg => a.wrapping_neg(),
        }
    }

    /// The assembler mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
        }
    }
}

/// Classification of external inputs.
///
/// The kind matters for the exploitability use case (§3.1 of the paper):
/// data arriving via [`InputKind::Network`] is attacker-controlled, so an
/// overflow fed by it is classified as remotely exploitable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// A value read from the network (attacker-controlled).
    Network,
    /// A value read from a local file.
    File,
    /// The current time.
    Time,
    /// An OS-provided random value.
    Random,
    /// An environment/configuration value.
    Env,
}

impl InputKind {
    /// Returns `true` if an attacker can influence inputs of this kind
    /// remotely.
    pub fn attacker_controlled(self) -> bool {
        matches!(self, InputKind::Network)
    }

    /// The assembler name of this input kind.
    pub fn name(self) -> &'static str {
        match self {
            InputKind::Network => "net",
            InputKind::File => "file",
            InputKind::Time => "time",
            InputKind::Random => "rand",
            InputKind::Env => "env",
        }
    }
}

/// Output channels observable outside the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Ordinary program output (stdout-like).
    Out,
    /// Error-log output. Log records double as the coarse-grained
    /// execution "breadcrumbs" of §2.4 of the paper.
    Log,
}

impl Channel {
    /// The assembler name of this channel.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Out => "out",
            Channel::Log => "log",
        }
    }
}

/// A straight-line (non-control-flow) instruction.
///
/// Every variant writes at most one register and at most one memory
/// location, which keeps the write sets that drive backward havocking
/// (§2.4 of the paper) trivially computable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// ALU operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op(src)`.
    Un {
        /// Unary operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = zero_extend(mem[addr + offset], width)`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address operand.
        addr: Operand,
        /// Constant byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// `mem[addr + offset] = truncate(src, width)`.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address operand.
        addr: Operand,
        /// Constant byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// `dst = address_of(global)`.
    AddrOf {
        /// Destination register.
        dst: Reg,
        /// The global whose address is taken.
        global: GlobalId,
    },
    /// `dst = fresh external input` of the given kind.
    ///
    /// During reverse synthesis these become unconstrained symbolic
    /// values (§2.4); the synthesized suffix records the concrete values
    /// the solver chose so replay is deterministic.
    Input {
        /// Destination register.
        dst: Reg,
        /// What produced the input.
        kind: InputKind,
    },
    /// Emit `src` on an output channel.
    Output {
        /// Value to emit.
        src: Operand,
        /// Target channel.
        channel: Channel,
    },
    /// `dst = heap_alloc(size)` — returns the address of a fresh block.
    Alloc {
        /// Destination register receiving the block address.
        dst: Reg,
        /// Requested size in bytes.
        size: Operand,
    },
    /// Releases a heap block previously returned by [`Inst::Alloc`].
    Free {
        /// Block address to free.
        addr: Operand,
    },
    /// Acquires the mutex identified by the word at `addr`.
    ///
    /// Mutexes are addressed by memory location, like pthread mutexes.
    Lock {
        /// Mutex address.
        addr: Operand,
    },
    /// Releases the mutex identified by the word at `addr`.
    Unlock {
        /// Mutex address.
        addr: Operand,
    },
    /// `dst = spawn(func, arg)` — starts a new thread, yielding its id.
    Spawn {
        /// Destination register receiving the thread id.
        dst: Reg,
        /// Thread entry function; receives `arg` in `r0`.
        func: FuncId,
        /// Argument passed to the new thread.
        arg: Operand,
    },
    /// Blocks until the thread named by `tid` halts.
    Join {
        /// Thread id operand.
        tid: Operand,
    },
    /// Faults the machine if `cond` is zero — a semantic failure.
    Assert {
        /// Condition that must be non-zero.
        cond: Operand,
        /// Diagnostic message recorded in the fault.
        msg: String,
    },
    /// Does nothing. Useful as padding in generated workloads.
    Nop,
}

impl Inst {
    /// The register this instruction writes, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::AddrOf { dst, .. }
            | Inst::Input { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::Spawn { dst, .. } => Some(*dst),
            Inst::Store { .. }
            | Inst::Output { .. }
            | Inst::Free { .. }
            | Inst::Lock { .. }
            | Inst::Unlock { .. }
            | Inst::Join { .. }
            | Inst::Assert { .. }
            | Inst::Nop => None,
        }
    }

    /// The registers this instruction reads.
    pub fn used_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        };
        match self {
            Inst::Mov { src, .. } | Inst::Un { src, .. } => push(src),
            Inst::Bin { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Inst::Load { addr, .. } => push(addr),
            Inst::Store { src, addr, .. } => {
                push(src);
                push(addr);
            }
            Inst::Output { src, .. } => push(src),
            Inst::Alloc { size, .. } => push(size),
            Inst::Free { addr } | Inst::Lock { addr } | Inst::Unlock { addr } => push(addr),
            Inst::Spawn { arg, .. } => push(arg),
            Inst::Join { tid } => push(tid),
            Inst::Assert { cond, .. } => push(cond),
            Inst::AddrOf { .. } | Inst::Input { .. } | Inst::Nop => {}
        }
        out
    }

    /// Returns `true` if this instruction may write memory.
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Alloc { .. }
                | Inst::Free { .. }
                | Inst::Lock { .. }
                | Inst::Unlock { .. }
        )
    }

    /// Returns `true` if this instruction is a synchronization operation
    /// (a point where the scheduler may need to be consulted during
    /// schedule reconstruction).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Inst::Lock { .. } | Inst::Unlock { .. } | Inst::Spawn { .. } | Inst::Join { .. }
        )
    }
}

/// A basic-block terminator: the only instructions that transfer control.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump to another block of the same function.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Successor when `cond != 0`.
        then_b: BlockId,
        /// Successor when `cond == 0`.
        else_b: BlockId,
    },
    /// Calls `func` with `args`; on return, `ret` (if any) receives the
    /// callee's return value and control continues at `cont`.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument operands, copied into the callee's `r0..rN`.
        args: Vec<Operand>,
        /// Register receiving the return value, if used.
        ret: Option<Reg>,
        /// Block executed after the callee returns.
        cont: BlockId,
    },
    /// Returns from the current function with an optional value.
    Return(Option<Operand>),
    /// Halts the current thread normally.
    Halt,
}

impl Terminator {
    /// Intra-procedural successor blocks of this terminator.
    ///
    /// A [`Terminator::Call`] reports its continuation block: from the
    /// caller's CFG perspective the call "falls through" to `cont`.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_b, else_b, .. } => {
                if then_b == else_b {
                    vec![*then_b]
                } else {
                    vec![*then_b, *else_b]
                }
            }
            Terminator::Call { cont, .. } => vec![*cont],
            Terminator::Return(_) | Terminator::Halt => vec![],
        }
    }

    /// The registers this terminator reads.
    pub fn used_regs(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_reg().into_iter().collect(),
            Terminator::Call { args, .. } => args.iter().filter_map(|a| a.as_reg()).collect(),
            Terminator::Return(Some(v)) => v.as_reg().into_iter().collect(),
            Terminator::Jump(_) | Terminator::Return(None) | Terminator::Halt => vec![],
        }
    }
}

// JSON wire format: serde's externally-tagged layout, kept compatible
// with dumps written by the pre-hermetic build (see `mvm_json`).
json_newtype!(Reg);
json_enum!(Operand { Reg(Reg), Imm(u64) });
json_enum!(Width { W1, W2, W4, W8 });
json_enum!(BinOp {
    Add,
    Sub,
    Mul,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Eq,
    Ne,
    LtU,
    LeU,
    LtS,
    LeS,
});
json_enum!(UnOp { Not, Neg });
json_enum!(InputKind {
    Network,
    File,
    Time,
    Random,
    Env
});
json_enum!(Channel { Out, Log });
json_enum!(Inst {
    Mov { dst: Reg, src: Operand },
    Bin { op: BinOp, dst: Reg, lhs: Operand, rhs: Operand },
    Un { op: UnOp, dst: Reg, src: Operand },
    Load { dst: Reg, addr: Operand, offset: i64, width: Width },
    Store { src: Operand, addr: Operand, offset: i64, width: Width },
    AddrOf { dst: Reg, global: GlobalId },
    Input { dst: Reg, kind: InputKind },
    Output { src: Operand, channel: Channel },
    Alloc { dst: Reg, size: Operand },
    Free { addr: Operand },
    Lock { addr: Operand },
    Unlock { addr: Operand },
    Spawn { dst: Reg, func: FuncId, arg: Operand },
    Join { tid: Operand },
    Assert { cond: Operand, msg: String },
    Nop,
});
json_enum!(Terminator {
    Jump(BlockId),
    Branch { cond: Operand, then_b: BlockId, else_b: BlockId },
    Call { func: FuncId, args: Vec<Operand>, ret: Option<Reg>, cont: BlockId },
    Return(Option<Operand>),
    Halt,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), Some(0));
        assert_eq!(BinOp::Sub.eval(0, 1), Some(u64::MAX));
        assert_eq!(BinOp::Mul.eval(1 << 63, 2), Some(0));
        assert_eq!(BinOp::DivU.eval(7, 2), Some(3));
        assert_eq!(BinOp::RemU.eval(7, 2), Some(1));
    }

    #[test]
    fn binop_eval_div_zero_is_none() {
        assert_eq!(BinOp::DivU.eval(1, 0), None);
        assert_eq!(BinOp::RemU.eval(1, 0), None);
    }

    #[test]
    fn binop_eval_comparisons() {
        assert_eq!(BinOp::Eq.eval(3, 3), Some(1));
        assert_eq!(BinOp::Ne.eval(3, 3), Some(0));
        assert_eq!(BinOp::LtU.eval(1, u64::MAX), Some(1));
        // -1 < 1 signed, but not unsigned.
        assert_eq!(BinOp::LtS.eval(u64::MAX, 1), Some(1));
        assert_eq!(BinOp::LtU.eval(u64::MAX, 1), Some(0));
        assert_eq!(BinOp::LeS.eval(5, 5), Some(1));
    }

    #[test]
    fn binop_eval_shifts() {
        assert_eq!(BinOp::Shl.eval(1, 4), Some(16));
        assert_eq!(BinOp::Shr.eval(0x8000_0000_0000_0000, 63), Some(1));
        assert_eq!(BinOp::Sar.eval(u64::MAX, 8), Some(u64::MAX));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Not.eval(0), u64::MAX);
        assert_eq!(UnOp::Neg.eval(1), u64::MAX);
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::W1.mask(), 0xff);
        assert_eq!(Width::W2.bytes(), 2);
        assert_eq!(Width::W8.mask(), u64::MAX);
    }

    #[test]
    fn def_and_use_regs() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(5),
        };
        assert_eq!(i.def_reg(), Some(Reg(2)));
        assert_eq!(i.used_regs(), vec![Reg(0)]);

        let s = Inst::Store {
            src: Operand::Reg(Reg(1)),
            addr: Operand::Reg(Reg(3)),
            offset: 8,
            width: Width::W8,
        };
        assert_eq!(s.def_reg(), None);
        assert_eq!(s.used_regs(), vec![Reg(1), Reg(3)]);
        assert!(s.writes_memory());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Reg(Reg(0)),
            then_b: BlockId(1),
            else_b: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let same = Terminator::Branch {
            cond: Operand::Reg(Reg(0)),
            then_b: BlockId(1),
            else_b: BlockId(1),
        };
        assert_eq!(same.successors(), vec![BlockId(1)]);
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn input_kind_taint() {
        assert!(InputKind::Network.attacker_controlled());
        assert!(!InputKind::File.attacker_controlled());
        assert!(!InputKind::Time.attacker_controlled());
    }
}
