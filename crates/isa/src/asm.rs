//! A line-oriented text assembler for MicroVM programs.
//!
//! The assembler exists so that example programs and tests can be written
//! legibly as text rather than through the builder API. The syntax:
//!
//! ```text
//! # Globals: `global NAME SIZE`, optionally `= <u64>` for word init.
//! global counter 8 = 5
//!
//! func worker(1) {
//! entry:
//!     load r1, [r0]        # word load; load1/load2/load4 for narrow
//!     add r1, r1, 1
//!     store r1, [r0+8]
//!     br r1, done, done
//! done:
//!     ret r1
//! }
//!
//! func main() {
//! entry:
//!     addr r0, counter
//!     call r2 = worker(r0), cont
//! cont:
//!     input r3, net
//!     output r3, out
//!     assert r2, "worker result must be non-zero"
//!     halt
//! }
//! ```
//!
//! Mnemonics mirror [`crate::inst`]: `mov`, the [`crate::BinOp`]
//! mnemonics, `not`/`neg`, `load{,1,2,4}`, `store{,1,2,4}`, `addr`,
//! `input`, `output`, `alloc`, `free`, `lock`, `unlock`, `spawn`, `join`,
//! `assert`, `nop`; terminators `jmp`, `br`, `call`, `ret`, `halt`.

use std::collections::HashMap;

use crate::inst::{BinOp, Channel, InputKind, Inst, Operand, Reg, Terminator, UnOp, Width};
use crate::program::{BlockId, FuncId, GlobalId, Program};
use crate::validate::ValidateError;
use crate::{Function, Global};

/// An assembly error with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line where the error was detected (0 for program-level
    /// errors).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<ValidateError> for AsmError {
    fn from(e: ValidateError) -> Self {
        AsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Assembles a text program into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] on syntax errors, unresolved labels or names,
/// or if the resulting program fails [`crate::validate::validate`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    Parser::new(src).parse()
}

struct PendingTerm {
    line: usize,
    term: TermTemplate,
}

enum TermTemplate {
    Jump(String),
    Branch {
        cond: Operand,
        then_l: String,
        else_l: String,
    },
    Call {
        func: String,
        args: Vec<Operand>,
        ret: Option<Reg>,
        cont: String,
    },
    Return(Option<Operand>),
    Halt,
}

struct PendingBlock {
    label: String,
    line: usize,
    insts: Vec<PendingInst>,
    term: Option<PendingTerm>,
}

enum PendingInst {
    Ready(Inst),
    AddrOf {
        dst: Reg,
        global: String,
        line: usize,
    },
    Spawn {
        dst: Reg,
        func: String,
        arg: Operand,
        line: usize,
    },
}

struct PendingFunc {
    name: String,
    arity: usize,
    line: usize,
    blocks: Vec<PendingBlock>,
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let no_comment = match (l.find('#'), l.find("//")) {
                    (Some(a), Some(b)) => &l[..a.min(b)],
                    (Some(a), None) => &l[..a],
                    (None, Some(b)) => &l[..b],
                    (None, None) => l,
                };
                (i + 1, no_comment.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse(mut self) -> Result<Program, AsmError> {
        let mut globals: Vec<Global> = Vec::new();
        let mut global_ids: HashMap<String, GlobalId> = HashMap::new();
        let mut funcs: Vec<PendingFunc> = Vec::new();

        while let Some((line, text)) = self.next() {
            if let Some(rest) = text.strip_prefix("global ") {
                let (name, size, init) = parse_global(line, rest)?;
                if global_ids.contains_key(&name) {
                    return err(line, format!("duplicate global {name:?}"));
                }
                global_ids.insert(name.clone(), GlobalId(globals.len() as u32));
                globals.push(Global {
                    name,
                    size,
                    addr: 0,
                    init,
                });
            } else if let Some(rest) = text.strip_prefix("func ") {
                funcs.push(self.parse_func(line, rest)?);
            } else {
                return err(line, format!("expected `global` or `func`, found {text:?}"));
            }
        }

        let func_ids: HashMap<String, FuncId> = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        if func_ids.len() != funcs.len() {
            return err(0, "duplicate function name");
        }
        let entry = match func_ids.get("main") {
            Some(&id) => id,
            None => return err(0, "no `main` function"),
        };

        // Resolve label/name references now that all definitions exist.
        let mut resolved = Vec::with_capacity(funcs.len());
        for pf in funcs {
            let labels: HashMap<String, BlockId> = pf
                .blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (b.label.clone(), BlockId(i as u32)))
                .collect();
            if labels.len() != pf.blocks.len() {
                return err(
                    pf.line,
                    format!("duplicate label in function {:?}", pf.name),
                );
            }
            let lookup_label = |l: &str, line: usize| -> Result<BlockId, AsmError> {
                labels.get(l).copied().ok_or_else(|| AsmError {
                    line,
                    msg: format!("unknown label {l:?}"),
                })
            };
            let lookup_func = |f: &str, line: usize| -> Result<FuncId, AsmError> {
                func_ids.get(f).copied().ok_or_else(|| AsmError {
                    line,
                    msg: format!("unknown function {f:?}"),
                })
            };
            let mut blocks = Vec::with_capacity(pf.blocks.len());
            for pb in pf.blocks {
                let mut insts = Vec::with_capacity(pb.insts.len());
                for pi in pb.insts {
                    insts.push(match pi {
                        PendingInst::Ready(i) => i,
                        PendingInst::AddrOf { dst, global, line } => {
                            let gid = global_ids.get(&global).copied().ok_or_else(|| AsmError {
                                line,
                                msg: format!("unknown global {global:?}"),
                            })?;
                            Inst::AddrOf { dst, global: gid }
                        }
                        PendingInst::Spawn {
                            dst,
                            func,
                            arg,
                            line,
                        } => Inst::Spawn {
                            dst,
                            func: lookup_func(&func, line)?,
                            arg,
                        },
                    });
                }
                let Some(pt) = pb.term else {
                    return err(
                        pb.line,
                        format!("block {:?} in {:?} has no terminator", pb.label, pf.name),
                    );
                };
                let terminator = match pt.term {
                    TermTemplate::Jump(l) => Terminator::Jump(lookup_label(&l, pt.line)?),
                    TermTemplate::Branch {
                        cond,
                        then_l,
                        else_l,
                    } => Terminator::Branch {
                        cond,
                        then_b: lookup_label(&then_l, pt.line)?,
                        else_b: lookup_label(&else_l, pt.line)?,
                    },
                    TermTemplate::Call {
                        func,
                        args,
                        ret,
                        cont,
                    } => Terminator::Call {
                        func: lookup_func(&func, pt.line)?,
                        args,
                        ret,
                        cont: lookup_label(&cont, pt.line)?,
                    },
                    TermTemplate::Return(v) => Terminator::Return(v),
                    TermTemplate::Halt => Terminator::Halt,
                };
                blocks.push(crate::BasicBlock {
                    label: pb.label,
                    insts,
                    terminator,
                });
            }
            resolved.push(Function {
                name: pf.name,
                arity: pf.arity,
                blocks,
            });
        }

        let mut program = Program {
            funcs: resolved,
            globals,
            entry,
        };
        program.assign_addresses();
        crate::validate::validate(&program)?;
        Ok(program)
    }

    fn parse_func(&mut self, line: usize, header: &str) -> Result<PendingFunc, AsmError> {
        // Header: `NAME(ARITY) {` — arity may be empty for 0.
        let header = header.trim();
        let Some(brace) = header.strip_suffix('{') else {
            return err(line, "function header must end with `{`");
        };
        let sig = brace.trim();
        let (name, arity) = parse_signature(line, sig)?;
        let mut blocks: Vec<PendingBlock> = Vec::new();
        loop {
            let Some((lno, text)) = self.next() else {
                return err(line, format!("unterminated function {name:?}"));
            };
            if text == "}" {
                break;
            }
            if let Some(label) = text.strip_suffix(':') {
                if !is_ident(label) {
                    return err(lno, format!("bad label {label:?}"));
                }
                blocks.push(PendingBlock {
                    label: label.to_string(),
                    line: lno,
                    insts: Vec::new(),
                    term: None,
                });
                continue;
            }
            let Some(block) = blocks.last_mut() else {
                return err(lno, "instruction before first label");
            };
            if block.term.is_some() {
                return err(lno, "instruction after block terminator; add a new label");
            }
            parse_stmt(lno, text, block)?;
        }
        if blocks.is_empty() {
            return err(line, format!("function {name:?} has no blocks"));
        }
        Ok(PendingFunc {
            name,
            arity,
            line,
            blocks,
        })
    }
}

fn parse_signature(line: usize, sig: &str) -> Result<(String, usize), AsmError> {
    let Some(open) = sig.find('(') else {
        return err(line, "expected `name(arity)`");
    };
    let Some(close) = sig.rfind(')') else {
        return err(line, "expected closing `)`");
    };
    let name = sig[..open].trim();
    if !is_ident(name) {
        return err(line, format!("bad function name {name:?}"));
    }
    let inner = sig[open + 1..close].trim();
    let arity = if inner.is_empty() {
        0
    } else {
        inner.parse::<usize>().map_err(|_| AsmError {
            line,
            msg: format!("bad arity {inner:?}"),
        })?
    };
    Ok((name.to_string(), arity))
}

fn parse_global(line: usize, rest: &str) -> Result<(String, u64, Vec<u8>), AsmError> {
    // `NAME SIZE` or `NAME SIZE = VALUE`.
    let (decl, init) = match rest.split_once('=') {
        Some((d, v)) => (d.trim(), Some(v.trim())),
        None => (rest.trim(), None),
    };
    let mut parts = decl.split_whitespace();
    let Some(name) = parts.next() else {
        return err(line, "global needs a name");
    };
    if !is_ident(name) {
        return err(line, format!("bad global name {name:?}"));
    }
    let Some(size_s) = parts.next() else {
        return err(line, "global needs a size");
    };
    if parts.next().is_some() {
        return err(line, "unexpected tokens after global size");
    }
    let size = parse_u64(size_s).ok_or_else(|| AsmError {
        line,
        msg: format!("bad global size {size_s:?}"),
    })?;
    let init_bytes = match init {
        None => Vec::new(),
        Some(v) => {
            let val = parse_u64(v).ok_or_else(|| AsmError {
                line,
                msg: format!("bad global initializer {v:?}"),
            })?;
            if size < 8 {
                return err(line, "word-initialized global must be at least 8 bytes");
            }
            val.to_le_bytes().to_vec()
        }
    };
    Ok((name.to_string(), size, init_bytes))
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = s.strip_prefix('-') {
        neg.parse::<u64>().ok().map(|v| v.wrapping_neg())
    } else {
        s.parse::<u64>().ok()
    }
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('r') {
        if let Ok(i) = n.parse::<u8>() {
            if (i as usize) < Reg::COUNT {
                return Ok(Reg(i));
            }
        }
    }
    err(line, format!("expected register, found {s:?}"))
}

fn parse_operand(line: usize, s: &str) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(Operand::Reg(parse_reg(line, s)?));
    }
    parse_u64(s).map(Operand::Imm).ok_or_else(|| AsmError {
        line,
        msg: format!("expected operand, found {s:?}"),
    })
}

/// Parses `[rN]`, `[rN+K]`, or `[rN-K]`.
fn parse_mem(line: usize, s: &str) -> Result<(Operand, i64), AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            msg: format!("expected memory operand like [r0+8], found {s:?}"),
        })?;
    let (base_s, off) = if let Some(p) = inner.find('+') {
        (&inner[..p], inner[p + 1..].trim().parse::<i64>().ok())
    } else if let Some(p) = inner.rfind('-') {
        (
            &inner[..p],
            inner[p + 1..].trim().parse::<i64>().ok().map(|v| -v),
        )
    } else {
        (inner, Some(0))
    };
    let Some(offset) = off else {
        return err(line, format!("bad memory offset in {s:?}"));
    };
    Ok((parse_operand(line, base_s)?, offset))
}

fn split_args(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

fn binop_of(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "divu" => BinOp::DivU,
        "remu" => BinOp::RemU,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "sar" => BinOp::Sar,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "ltu" => BinOp::LtU,
        "leu" => BinOp::LeU,
        "lts" => BinOp::LtS,
        "les" => BinOp::LeS,
        _ => return None,
    })
}

fn width_of_suffix(m: &str, base: &str) -> Option<Width> {
    match m.strip_prefix(base)? {
        "" => Some(Width::W8),
        "1" => Some(Width::W1),
        "2" => Some(Width::W2),
        "4" => Some(Width::W4),
        _ => None,
    }
}

fn parse_stmt(line: usize, text: &str, block: &mut PendingBlock) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(p) => (&text[..p], text[p..].trim()),
        None => (text, ""),
    };

    // Terminators first.
    match mnemonic {
        "jmp" => {
            block.term = Some(PendingTerm {
                line,
                term: TermTemplate::Jump(rest.to_string()),
            });
            return Ok(());
        }
        "br" => {
            let a = split_args(rest);
            if a.len() != 3 {
                return err(line, "br needs `cond, then, else`");
            }
            block.term = Some(PendingTerm {
                line,
                term: TermTemplate::Branch {
                    cond: parse_operand(line, a[0])?,
                    then_l: a[1].to_string(),
                    else_l: a[2].to_string(),
                },
            });
            return Ok(());
        }
        "call" => {
            // `call rX = name(args), cont` or `call name(args), cont`.
            let (ret, callpart) = match rest.split_once('=') {
                Some((r, c)) if r.trim().starts_with('r') && !r.contains('(') => {
                    (Some(parse_reg(line, r.trim())?), c.trim())
                }
                _ => (None, rest),
            };
            let Some(open) = callpart.find('(') else {
                return err(line, "call needs `name(args), cont`");
            };
            let Some(close) = callpart.rfind(')') else {
                return err(line, "call missing `)`");
            };
            let name = callpart[..open].trim();
            let args = split_args(&callpart[open + 1..close])
                .into_iter()
                .map(|a| parse_operand(line, a))
                .collect::<Result<Vec<_>, _>>()?;
            let cont = callpart[close + 1..]
                .trim()
                .strip_prefix(',')
                .map(str::trim)
                .ok_or_else(|| AsmError {
                    line,
                    msg: "call needs a continuation label after `)`".into(),
                })?;
            if !is_ident(name) || !is_ident(cont) {
                return err(line, "bad call syntax");
            }
            block.term = Some(PendingTerm {
                line,
                term: TermTemplate::Call {
                    func: name.to_string(),
                    args,
                    ret,
                    cont: cont.to_string(),
                },
            });
            return Ok(());
        }
        "ret" => {
            let v = if rest.is_empty() {
                None
            } else {
                Some(parse_operand(line, rest)?)
            };
            block.term = Some(PendingTerm {
                line,
                term: TermTemplate::Return(v),
            });
            return Ok(());
        }
        "halt" => {
            block.term = Some(PendingTerm {
                line,
                term: TermTemplate::Halt,
            });
            return Ok(());
        }
        _ => {}
    }

    // Straight-line instructions.
    let a = split_args(rest);
    let inst: PendingInst = if mnemonic == "mov" {
        if a.len() != 2 {
            return err(line, "mov needs `dst, src`");
        }
        PendingInst::Ready(Inst::Mov {
            dst: parse_reg(line, a[0])?,
            src: parse_operand(line, a[1])?,
        })
    } else if let Some(op) = binop_of(mnemonic) {
        if a.len() != 3 {
            return err(line, format!("{mnemonic} needs `dst, lhs, rhs`"));
        }
        PendingInst::Ready(Inst::Bin {
            op,
            dst: parse_reg(line, a[0])?,
            lhs: parse_operand(line, a[1])?,
            rhs: parse_operand(line, a[2])?,
        })
    } else if mnemonic == "not" || mnemonic == "neg" {
        if a.len() != 2 {
            return err(line, format!("{mnemonic} needs `dst, src`"));
        }
        PendingInst::Ready(Inst::Un {
            op: if mnemonic == "not" {
                UnOp::Not
            } else {
                UnOp::Neg
            },
            dst: parse_reg(line, a[0])?,
            src: parse_operand(line, a[1])?,
        })
    } else if let Some(width) = width_of_suffix(mnemonic, "load") {
        if a.len() != 2 {
            return err(line, "load needs `dst, [addr]`");
        }
        let (addr, offset) = parse_mem(line, a[1])?;
        PendingInst::Ready(Inst::Load {
            dst: parse_reg(line, a[0])?,
            addr,
            offset,
            width,
        })
    } else if let Some(width) = width_of_suffix(mnemonic, "store") {
        if a.len() != 2 {
            return err(line, "store needs `src, [addr]`");
        }
        let (addr, offset) = parse_mem(line, a[1])?;
        PendingInst::Ready(Inst::Store {
            src: parse_operand(line, a[0])?,
            addr,
            offset,
            width,
        })
    } else if mnemonic == "addr" {
        if a.len() != 2 || !is_ident(a[1]) {
            return err(line, "addr needs `dst, global_name`");
        }
        PendingInst::AddrOf {
            dst: parse_reg(line, a[0])?,
            global: a[1].to_string(),
            line,
        }
    } else if mnemonic == "input" {
        if a.len() != 2 {
            return err(line, "input needs `dst, kind`");
        }
        let kind = match a[1] {
            "net" => InputKind::Network,
            "file" => InputKind::File,
            "time" => InputKind::Time,
            "rand" => InputKind::Random,
            "env" => InputKind::Env,
            k => return err(line, format!("unknown input kind {k:?}")),
        };
        PendingInst::Ready(Inst::Input {
            dst: parse_reg(line, a[0])?,
            kind,
        })
    } else if mnemonic == "output" {
        if a.len() != 2 {
            return err(line, "output needs `src, channel`");
        }
        let channel = match a[1] {
            "out" => Channel::Out,
            "log" => Channel::Log,
            c => return err(line, format!("unknown channel {c:?}")),
        };
        PendingInst::Ready(Inst::Output {
            src: parse_operand(line, a[0])?,
            channel,
        })
    } else if mnemonic == "alloc" {
        if a.len() != 2 {
            return err(line, "alloc needs `dst, size`");
        }
        PendingInst::Ready(Inst::Alloc {
            dst: parse_reg(line, a[0])?,
            size: parse_operand(line, a[1])?,
        })
    } else if mnemonic == "free" {
        if a.len() != 1 {
            return err(line, "free needs `addr`");
        }
        PendingInst::Ready(Inst::Free {
            addr: parse_operand(line, a[0])?,
        })
    } else if mnemonic == "lock" || mnemonic == "unlock" {
        if a.len() != 1 {
            return err(line, format!("{mnemonic} needs `addr`"));
        }
        let addr = parse_operand(line, a[0])?;
        PendingInst::Ready(if mnemonic == "lock" {
            Inst::Lock { addr }
        } else {
            Inst::Unlock { addr }
        })
    } else if mnemonic == "spawn" {
        if a.len() != 3 || !is_ident(a[1]) {
            return err(line, "spawn needs `dst, func, arg`");
        }
        PendingInst::Spawn {
            dst: parse_reg(line, a[0])?,
            func: a[1].to_string(),
            arg: parse_operand(line, a[2])?,
            line,
        }
    } else if mnemonic == "join" {
        if a.len() != 1 {
            return err(line, "join needs `tid`");
        }
        PendingInst::Ready(Inst::Join {
            tid: parse_operand(line, a[0])?,
        })
    } else if mnemonic == "assert" {
        // `assert cond, "message"` — message optional.
        let (cond_s, msg) = match rest.split_once(',') {
            Some((c, m)) => (c.trim(), m.trim().trim_matches('"').to_string()),
            None => (rest, String::from("assertion failed")),
        };
        PendingInst::Ready(Inst::Assert {
            cond: parse_operand(line, cond_s)?,
            msg,
        })
    } else if mnemonic == "nop" {
        PendingInst::Ready(Inst::Nop)
    } else {
        return err(line, format!("unknown mnemonic {mnemonic:?}"));
    };
    block.insts.push(inst);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_minimal() {
        let p = assemble("func main() {\nentry:\n  halt\n}").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.func(p.entry).name, "main");
    }

    #[test]
    fn assemble_globals_and_memory() {
        let p = assemble(
            r#"
            global counter 8 = 7
            global buf 32
            func main() {
            entry:
                addr r0, counter
                load r1, [r0]
                add r1, r1, 1
                store r1, [r0]
                addr r2, buf
                store1 r1, [r2+3]
                load2 r3, [r2-0]
                halt
            }
            "#,
        )
        .unwrap();
        let g = p.global_by_name("counter").unwrap();
        assert_eq!(p.global(g).init, 7u64.to_le_bytes().to_vec());
        let b = &p.func(p.entry).blocks[0];
        assert!(matches!(
            b.insts[5],
            Inst::Store {
                width: Width::W1,
                offset: 3,
                ..
            }
        ));
        assert!(matches!(
            b.insts[6],
            Inst::Load {
                width: Width::W2,
                ..
            }
        ));
    }

    #[test]
    fn assemble_control_flow_and_calls() {
        let p = assemble(
            r#"
            func inc(1) {
            entry:
                add r1, r0, 1
                ret r1
            }
            func main() {
            entry:
                mov r0, 5
                call r1 = inc(r0), after
            after:
                eq r2, r1, 6
                br r2, good, bad
            good:
                halt
            bad:
                assert 0, "inc failed"
                halt
            }
            "#,
        )
        .unwrap();
        let main = p.func(p.entry);
        assert_eq!(main.blocks.len(), 4);
        assert!(matches!(
            main.blocks[0].terminator,
            Terminator::Call {
                ret: Some(Reg(1)),
                ..
            }
        ));
    }

    #[test]
    fn assemble_threads_and_sync() {
        let p = assemble(
            r#"
            global m 8
            func worker(1) {
            entry:
                lock r0
                unlock r0
                halt
            }
            func main() {
            entry:
                addr r0, m
                spawn r1, worker, r0
                join r1
                halt
            }
            "#,
        )
        .unwrap();
        let main_id = p.func_by_name("main").unwrap();
        assert!(matches!(
            p.func(main_id).blocks[0].insts[1],
            Inst::Spawn { .. }
        ));
    }

    #[test]
    fn assemble_inputs_outputs() {
        let p = assemble(
            r#"
            func main() {
            entry:
                input r0, net
                input r1, time
                output r0, out
                output r1, log
                halt
            }
            "#,
        )
        .unwrap();
        let b = &p.func(p.entry).blocks[0];
        assert!(matches!(
            b.insts[0],
            Inst::Input {
                kind: InputKind::Network,
                ..
            }
        ));
        assert!(matches!(
            b.insts[3],
            Inst::Output {
                channel: Channel::Log,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_negative_offsets() {
        let p = assemble(
            "# leading comment\nfunc main() { // trailing\nentry:\n  mov r0, -1\n  store r0, [r0-8]\n  halt\n}",
        )
        .unwrap();
        let b = &p.func(p.entry).blocks[0];
        assert!(matches!(
            b.insts[0],
            Inst::Mov {
                src: Operand::Imm(u64::MAX),
                ..
            }
        ));
        assert!(matches!(b.insts[1], Inst::Store { offset: -8, .. }));
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("func main() {\nentry:\n  bogus r1\n  halt\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("func main() {\nentry:\n  jmp nowhere\n}").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn missing_main_rejected() {
        let e = assemble("func f() {\nentry:\n  halt\n}").unwrap_err();
        assert!(e.msg.contains("main"));
    }

    #[test]
    fn missing_terminator_rejected() {
        let e = assemble("func main() {\nentry:\n  mov r0, 1\n}").unwrap_err();
        assert!(e.msg.contains("terminator"));
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("func main() {\nentry:\n  mov r0, 0xff\n  halt\n}").unwrap();
        assert!(matches!(
            p.func(p.entry).blocks[0].insts[0],
            Inst::Mov {
                src: Operand::Imm(255),
                ..
            }
        ));
    }
}
