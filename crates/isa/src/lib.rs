//! # MicroVM instruction set architecture
//!
//! `mvm-isa` defines the intermediate representation that the whole RES
//! reproduction operates on: a small, RISC-like, register-based IR with
//! explicit functions, basic blocks, and terminators. It plays the role
//! LLVM bitcode played in the original HotOS'13 prototype — see
//! `DESIGN.md` §1 for the substitution rationale.
//!
//! The crate provides:
//!
//! * the instruction set itself ([`Inst`], [`Terminator`], [`BinOp`], ...),
//! * program containers ([`Program`], [`Function`], [`BasicBlock`],
//!   [`Global`]) with a fixed virtual-memory layout ([`layout`]),
//! * a builder API ([`ProgramBuilder`]) for constructing programs in code,
//! * a text assembler ([`asm::assemble`]) for writing programs as text,
//! * control-flow-graph utilities ([`cfg::Cfg`], [`cfg::CallGraph`]) used
//!   by the reverse-execution engine to navigate backward, and
//! * a validator ([`validate::validate`]) that rejects malformed programs.
//!
//! # Examples
//!
//! ```
//! use mvm_isa::{asm, cfg::Cfg};
//!
//! let program = asm::assemble(
//!     r#"
//!     func main() {
//!     entry:
//!         mov r0, 7
//!         add r1, r0, 35
//!         halt
//!     }
//!     "#,
//! )
//! .unwrap();
//! let main = program.func_by_name("main").unwrap();
//! let cfg = Cfg::build(program.func(main));
//! assert_eq!(cfg.block_count(), 1);
//! ```

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod inst;
pub mod layout;
pub mod program;
pub mod validate;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use inst::{
    BinOp,
    Channel,
    InputKind,
    Inst,
    Operand,
    Reg,
    Terminator,
    UnOp,
    Width, //
};
pub use program::{
    BasicBlock,
    BlockId,
    FuncId,
    Function,
    Global,
    GlobalId,
    Loc,
    Program, //
};
