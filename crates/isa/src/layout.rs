//! The MicroVM's fixed virtual-memory layout.
//!
//! Both the concrete interpreter (`mvm-machine`) and the reverse
//! execution engine (`res-core`) need to agree on where globals, heap
//! blocks, and thread stacks live, and to classify an arbitrary address
//! into one of those regions when interpreting a coredump. Keeping the
//! layout here, in the ISA crate, is what keeps them in sync.

/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x1000_0000;

/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x2000_0000;

/// Exclusive upper bound of the heap segment.
pub const HEAP_END: u64 = 0x4000_0000;

/// Base address of the stack area; thread `t`'s stack occupies
/// `[STACK_BASE + t*STACK_SIZE, STACK_BASE + (t+1)*STACK_SIZE)` and grows
/// downward from its top.
pub const STACK_BASE: u64 = 0x7000_0000;

/// Per-thread stack reservation in bytes.
pub const STACK_SIZE: u64 = 0x10_0000;

/// Maximum number of threads the layout reserves stacks for.
pub const MAX_THREADS: u64 = 64;

/// Memory region classification used when interpreting raw addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Within the globals segment.
    Global,
    /// Within the heap segment.
    Heap,
    /// Within thread `tid`'s stack reservation.
    Stack {
        /// Owning thread id.
        tid: u64,
    },
    /// Outside every mapped region; touching it faults.
    Unmapped,
}

/// Classifies an address into its memory region.
pub fn region_of(addr: u64) -> Region {
    if (GLOBAL_BASE..HEAP_BASE).contains(&addr) {
        Region::Global
    } else if (HEAP_BASE..HEAP_END).contains(&addr) {
        Region::Heap
    } else if (STACK_BASE..STACK_BASE + MAX_THREADS * STACK_SIZE).contains(&addr) {
        Region::Stack {
            tid: (addr - STACK_BASE) / STACK_SIZE,
        }
    } else {
        Region::Unmapped
    }
}

/// The initial stack pointer for thread `tid` (top of its reservation,
/// 16-byte aligned).
pub fn stack_top(tid: u64) -> u64 {
    STACK_BASE + (tid + 1) * STACK_SIZE - 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        assert!(GLOBAL_BASE < HEAP_BASE);
        assert!(HEAP_BASE < HEAP_END);
        assert!(HEAP_END <= STACK_BASE);
    }

    #[test]
    fn region_classification() {
        assert_eq!(region_of(GLOBAL_BASE), Region::Global);
        assert_eq!(region_of(HEAP_BASE), Region::Heap);
        assert_eq!(region_of(HEAP_END - 1), Region::Heap);
        assert_eq!(region_of(STACK_BASE), Region::Stack { tid: 0 });
        assert_eq!(region_of(STACK_BASE + STACK_SIZE), Region::Stack { tid: 1 });
        assert_eq!(region_of(0), Region::Unmapped);
        assert_eq!(region_of(u64::MAX), Region::Unmapped);
    }

    #[test]
    fn stack_tops_are_within_reservations() {
        for tid in 0..4 {
            let top = stack_top(tid);
            assert_eq!(region_of(top), Region::Stack { tid });
            assert_eq!(top % 16, 0);
        }
    }
}
