//! Fluent builders for constructing MicroVM programs in Rust code.
//!
//! The synthetic workloads (`res-workloads`) generate programs
//! programmatically; these builders keep that code readable and ensure
//! the result is validated and address-assigned.

use std::collections::HashMap;

use crate::inst::{BinOp, Channel, InputKind, Inst, Operand, Reg, Terminator, UnOp, Width};
use crate::program::{BasicBlock, BlockId, FuncId, Function, Global, GlobalId, Program};
use crate::validate::{validate, ValidateError};

/// Builds a [`Program`] function by function.
///
/// # Examples
///
/// ```
/// use mvm_isa::{ProgramBuilder, Reg, Operand, Terminator};
///
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global_zeroed("counter", 8);
/// let main = pb.declare_func("main", 0);
/// {
///     let f = pb.func_mut(main);
///     let entry = f.block("entry");
///     f.select(entry);
///     f.addr_of(Reg(0), g);
///     f.store(Operand::Imm(41), Reg(0), 0);
///     f.terminate(Terminator::Halt);
/// }
/// let program = pb.finish().unwrap();
/// assert_eq!(program.global(g).name, "counter");
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<FunctionBuilder>,
    func_ids: HashMap<String, FuncId>,
    globals: Vec<Global>,
    global_ids: HashMap<String, GlobalId>,
    entry: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a zero-initialized global of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if a global with this name already exists.
    pub fn global_zeroed(&mut self, name: &str, size: u64) -> GlobalId {
        self.global_init(name, size, Vec::new())
    }

    /// Declares a global with explicit initial bytes (zero-extended to
    /// `size`).
    ///
    /// # Panics
    ///
    /// Panics if a global with this name already exists or if the
    /// initializer is longer than `size`.
    pub fn global_init(&mut self, name: &str, size: u64, init: Vec<u8>) -> GlobalId {
        assert!(
            init.len() as u64 <= size,
            "initializer longer than global size"
        );
        assert!(
            !self.global_ids.contains_key(name),
            "duplicate global {name:?}"
        );
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_string(),
            size,
            addr: 0,
            init,
        });
        self.global_ids.insert(name.to_string(), id);
        id
    }

    /// Declares a global holding one 64-bit word with the given value.
    pub fn global_word(&mut self, name: &str, value: u64) -> GlobalId {
        self.global_init(name, 8, value.to_le_bytes().to_vec())
    }

    /// Declares a function and returns its id; the body is filled in via
    /// [`ProgramBuilder::func_mut`].
    ///
    /// # Panics
    ///
    /// Panics if a function with this name already exists.
    pub fn declare_func(&mut self, name: &str, arity: usize) -> FuncId {
        assert!(
            !self.func_ids.contains_key(name),
            "duplicate function {name:?}"
        );
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FunctionBuilder::new(name, arity));
        self.func_ids.insert(name.to_string(), id);
        if name == "main" {
            self.entry = Some(id);
        }
        id
    }

    /// Mutable access to a declared function's builder.
    ///
    /// # Panics
    ///
    /// Panics if the id was not returned by this builder.
    pub fn func_mut(&mut self, id: FuncId) -> &mut FunctionBuilder {
        &mut self.funcs[id.0 as usize]
    }

    /// Looks up a declared function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_ids.get(name).copied()
    }

    /// Overrides the entry function (defaults to the function named
    /// `main`).
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    /// Finalizes the program: assigns global addresses and validates.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the program is malformed (dangling
    /// block references, missing terminators, bad arity, no entry...).
    pub fn finish(self) -> Result<Program, ValidateError> {
        let entry = self.entry.ok_or(ValidateError::NoEntry)?;
        let mut program = Program {
            funcs: self
                .funcs
                .into_iter()
                .map(FunctionBuilder::into_function)
                .collect(),
            globals: self.globals,
            entry,
        };
        program.assign_addresses();
        validate(&program)?;
        Ok(program)
    }
}

/// Builds one [`Function`], block by block.
///
/// Blocks are created with [`FunctionBuilder::block`] and instructions
/// are appended to the *selected* block (see [`FunctionBuilder::select`]).
/// Every block must eventually be sealed with
/// [`FunctionBuilder::terminate`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    arity: usize,
    blocks: Vec<(String, Vec<Inst>, Option<Terminator>)>,
    labels: HashMap<String, BlockId>,
    current: Option<BlockId>,
}

impl FunctionBuilder {
    fn new(name: &str, arity: usize) -> Self {
        FunctionBuilder {
            name: name.to_string(),
            arity,
            blocks: Vec::new(),
            labels: HashMap::new(),
            current: None,
        }
    }

    /// Creates (or returns the id of) a block with the given label.
    ///
    /// The first block created is the entry block.
    pub fn block(&mut self, label: &str) -> BlockId {
        if let Some(&id) = self.labels.get(label) {
            return id;
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((label.to_string(), Vec::new(), None));
        self.labels.insert(label.to_string(), id);
        id
    }

    /// Selects the block that subsequent instructions are appended to.
    pub fn select(&mut self, id: BlockId) {
        self.current = Some(id);
    }

    /// Appends a raw instruction to the selected block.
    ///
    /// # Panics
    ///
    /// Panics if no block is selected or the selected block is already
    /// terminated.
    pub fn push(&mut self, inst: Inst) {
        let cur = self.current.expect("no block selected");
        let (_, insts, term) = &mut self.blocks[cur.0 as usize];
        assert!(term.is_none(), "appending to terminated block");
        insts.push(inst);
    }

    /// Seals the selected block with a terminator.
    ///
    /// # Panics
    ///
    /// Panics if no block is selected or it is already terminated.
    pub fn terminate(&mut self, t: Terminator) {
        let cur = self.current.expect("no block selected");
        let (_, _, term) = &mut self.blocks[cur.0 as usize];
        assert!(term.is_none(), "block terminated twice");
        *term = Some(t);
    }

    // Convenience wrappers. Each appends to the selected block.

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `dst = op(lhs, rhs)`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.push(Inst::Bin {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// `dst = op(src)`.
    pub fn un(&mut self, op: UnOp, dst: Reg, src: impl Into<Operand>) {
        self.push(Inst::Un {
            op,
            dst,
            src: src.into(),
        });
    }

    /// Word-sized load: `dst = mem[addr + offset]`.
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64) {
        self.load_w(dst, addr, offset, Width::W8);
    }

    /// Load with explicit width.
    pub fn load_w(&mut self, dst: Reg, addr: Reg, offset: i64, width: Width) {
        self.push(Inst::Load {
            dst,
            addr: Operand::Reg(addr),
            offset,
            width,
        });
    }

    /// Word-sized store: `mem[addr + offset] = src`.
    pub fn store(&mut self, src: impl Into<Operand>, addr: Reg, offset: i64) {
        self.store_w(src, addr, offset, Width::W8);
    }

    /// Store with explicit width.
    pub fn store_w(&mut self, src: impl Into<Operand>, addr: Reg, offset: i64, width: Width) {
        self.push(Inst::Store {
            src: src.into(),
            addr: Operand::Reg(addr),
            offset,
            width,
        });
    }

    /// `dst = &global`.
    pub fn addr_of(&mut self, dst: Reg, global: GlobalId) {
        self.push(Inst::AddrOf { dst, global });
    }

    /// `dst = external input` of `kind`.
    pub fn input(&mut self, dst: Reg, kind: InputKind) {
        self.push(Inst::Input { dst, kind });
    }

    /// Emit `src` on `channel`.
    pub fn output(&mut self, src: impl Into<Operand>, channel: Channel) {
        self.push(Inst::Output {
            src: src.into(),
            channel,
        });
    }

    /// `dst = alloc(size)`.
    pub fn alloc(&mut self, dst: Reg, size: impl Into<Operand>) {
        self.push(Inst::Alloc {
            dst,
            size: size.into(),
        });
    }

    /// `free(addr)`.
    pub fn free(&mut self, addr: Reg) {
        self.push(Inst::Free {
            addr: Operand::Reg(addr),
        });
    }

    /// Acquire the mutex at `addr`.
    pub fn lock(&mut self, addr: Reg) {
        self.push(Inst::Lock {
            addr: Operand::Reg(addr),
        });
    }

    /// Release the mutex at `addr`.
    pub fn unlock(&mut self, addr: Reg) {
        self.push(Inst::Unlock {
            addr: Operand::Reg(addr),
        });
    }

    /// `dst = spawn(func, arg)`.
    pub fn spawn(&mut self, dst: Reg, func: FuncId, arg: impl Into<Operand>) {
        self.push(Inst::Spawn {
            dst,
            func,
            arg: arg.into(),
        });
    }

    /// Join the thread named by `tid`.
    pub fn join(&mut self, tid: Reg) {
        self.push(Inst::Join {
            tid: Operand::Reg(tid),
        });
    }

    /// Assert `cond != 0` with a diagnostic message.
    pub fn assert(&mut self, cond: impl Into<Operand>, msg: &str) {
        self.push(Inst::Assert {
            cond: cond.into(),
            msg: msg.to_string(),
        });
    }

    /// Seal with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Seal with a conditional branch on `cond != 0`.
    pub fn branch(&mut self, cond: impl Into<Operand>, then_b: BlockId, else_b: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            then_b,
            else_b,
        });
    }

    /// Seal with a call; execution resumes at `cont`.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>, ret: Option<Reg>, cont: BlockId) {
        self.terminate(Terminator::Call {
            func,
            args,
            ret,
            cont,
        });
    }

    /// Seal with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Return(val));
    }

    /// Seal with a halt.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    fn into_function(self) -> Function {
        Function {
            name: self.name,
            arity: self.arity,
            blocks: self
                .blocks
                .into_iter()
                .map(|(label, insts, term)| BasicBlock {
                    label,
                    insts,
                    // Unterminated blocks are caught by `validate`; encode
                    // them as `Halt` so conversion is total.
                    terminator: term.unwrap_or(Terminator::Halt),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_block_function() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_func("main", 0);
        let f = pb.func_mut(main);
        let entry = f.block("entry");
        let exit = f.block("exit");
        f.select(entry);
        f.mov(Reg(0), 1u64);
        f.branch(Reg(0), exit, exit);
        f.select(exit);
        f.halt();
        let p = pb.finish().unwrap();
        assert_eq!(p.func(main).blocks.len(), 2);
        assert_eq!(p.entry, main);
    }

    #[test]
    fn entry_defaults_to_main() {
        let mut pb = ProgramBuilder::new();
        let aux = pb.declare_func("aux", 0);
        pb.func_mut(aux).block("entry");
        pb.func_mut(aux).select(BlockId(0));
        pb.func_mut(aux).halt();
        let main = pb.declare_func("main", 0);
        pb.func_mut(main).block("entry");
        pb.func_mut(main).select(BlockId(0));
        pb.func_mut(main).halt();
        let p = pb.finish().unwrap();
        assert_eq!(p.entry, main);
    }

    #[test]
    fn missing_entry_is_error() {
        let mut pb = ProgramBuilder::new();
        let aux = pb.declare_func("aux", 0);
        pb.func_mut(aux).block("entry");
        pb.func_mut(aux).select(BlockId(0));
        pb.func_mut(aux).halt();
        assert!(matches!(pb.finish(), Err(ValidateError::NoEntry)));
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut pb = ProgramBuilder::new();
        pb.declare_func("f", 0);
        pb.declare_func("f", 0);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn push_after_terminate_panics() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_func("main", 0);
        let f = pb.func_mut(main);
        let b = f.block("entry");
        f.select(b);
        f.halt();
        f.mov(Reg(0), 0u64);
    }

    #[test]
    fn globals_get_distinct_addresses() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global_word("a", 1);
        let b = pb.global_zeroed("b", 64);
        let main = pb.declare_func("main", 0);
        let f = pb.func_mut(main);
        let e = f.block("entry");
        f.select(e);
        f.halt();
        let p = pb.finish().unwrap();
        assert_ne!(p.global(a).addr, p.global(b).addr);
        assert_eq!(p.global(a).init, 1u64.to_le_bytes().to_vec());
    }
}
