//! Micro-benches: the latency of the core operations behind each
//! experiment, timed on the in-repo `res_bench::micro` runner (no
//! criterion). One group per experiment family; parameter sweeps mirror
//! the harness tables (smaller sizes, so `cargo bench` stays fast).

use res_bench::micro::{bench_function, Group};

use mvm_core::{Coredump, Minidump};
use res_baselines::{measure_recording, ForwardConfig, ForwardSynthesizer, RecorderKind};
use res_core::{replay_suffix, ResConfig, ResEngine};
use res_workloads::{build, run_to_failure, BugKind, WorkloadParams};

fn dump_for(kind: BugKind, prefix: u64) -> (mvm_isa::Program, Coredump) {
    let p = build(
        kind,
        WorkloadParams {
            prefix_iters: prefix,
            ..WorkloadParams::default()
        },
    );
    let m = (0..500)
        .find_map(|s| run_to_failure(&p, s))
        .expect("workload failure");
    let d = Coredump::capture(&m);
    (p, d)
}

/// E1: suffix synthesis per §4 bug class.
fn bench_e1_synthesis() {
    let g = Group::new("e1_hotos_eval").sample_size(10);
    for kind in BugKind::HOTOS_EVAL {
        let (p, d) = dump_for(kind, 10);
        g.bench(kind.name(), || {
            let engine = ResEngine::new(&p, ResConfig::default());
            engine.synthesize(&d)
        });
    }
}

/// E2: Figure-1 disambiguation.
fn bench_e2_figure1() {
    let (p, d) = dump_for(BugKind::Figure1, 10);
    bench_function("e2_figure1_synthesis", || {
        let engine = ResEngine::new(&p, ResConfig::default());
        engine.synthesize(&d)
    });
}

/// E3: RES vs forward ES across prefix lengths.
fn bench_e3_length_sweep() {
    let g = Group::new("e3_length_sweep").sample_size(10);
    for prefix in [100u64, 1_000, 10_000] {
        let (p, d) = dump_for(BugKind::DivByZero, prefix);
        g.bench(&format!("res/{prefix}"), || {
            let engine = ResEngine::new(&p, ResConfig::default());
            engine.synthesize(&d)
        });
        let goal = Minidump::from_coredump(&d);
        g.bench(&format!("forward_es/{prefix}"), || {
            let s = ForwardSynthesizer::new(ForwardConfig::default());
            s.synthesize(&p, &goal)
        });
    }
}

/// E8: recording cost measurement.
fn bench_e8_recording() {
    let g = Group::new("e8_recording_overhead").sample_size(10);
    let p = build(
        BugKind::DataRace,
        WorkloadParams {
            prefix_iters: 500,
            ..WorkloadParams::default()
        },
    );
    for kind in [
        RecorderKind::FullMemoryOrder,
        RecorderKind::OutputDeterministic,
        RecorderKind::None,
    ] {
        g.bench(kind.name(), || measure_recording(&p, kind, 11));
    }
}

/// E11: replay latency.
fn bench_e11_replay() {
    let (p, d) = dump_for(BugKind::UseAfterFree, 10);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix")
        .clone();
    bench_function("e11_replay_suffix", || replay_suffix(&p, &d, &sfx));
}

/// A3: solver latency per budget.
fn bench_a3_solver() {
    let g = Group::new("a3_solver_budget").sample_size(10);
    let (p, d) = dump_for(BugKind::HeapOverflowTainted, 10);
    for budget in [100u64, 20_000] {
        g.bench(&budget.to_string(), || {
            let engine = ResEngine::new(
                &p,
                ResConfig::builder()
                    .solver(mvm_symbolic::SolverConfig {
                        max_assignments: budget,
                        ..mvm_symbolic::SolverConfig::default()
                    })
                    .build(),
            );
            engine.synthesize(&d)
        });
    }
}

fn main() {
    bench_e1_synthesis();
    bench_e2_figure1();
    bench_e3_length_sweep();
    bench_e8_recording();
    bench_e11_replay();
    bench_a3_solver();
}
