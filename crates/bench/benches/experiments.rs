//! Criterion benches: the latency of the core operations behind each
//! experiment. One group per experiment family; parameter sweeps mirror
//! the harness tables (smaller sizes, so `cargo bench` stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mvm_core::{Coredump, Minidump};
use res_baselines::{measure_recording, ForwardConfig, ForwardSynthesizer, RecorderKind};
use res_core::{replay_suffix, ResConfig, ResEngine};
use res_workloads::{build, run_to_failure, BugKind, WorkloadParams};

fn dump_for(kind: BugKind, prefix: u64) -> (mvm_isa::Program, Coredump) {
    let p = build(
        kind,
        WorkloadParams {
            prefix_iters: prefix,
            ..WorkloadParams::default()
        },
    );
    let m = (0..500)
        .find_map(|s| run_to_failure(&p, s))
        .expect("workload failure");
    let d = Coredump::capture(&m);
    (p, d)
}

/// E1: suffix synthesis per §4 bug class.
fn bench_e1_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_hotos_eval");
    g.sample_size(10);
    for kind in BugKind::HOTOS_EVAL {
        let (p, d) = dump_for(kind, 10);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| {
                let engine = ResEngine::new(&p, ResConfig::default());
                std::hint::black_box(engine.synthesize(&d))
            })
        });
    }
    g.finish();
}

/// E2: Figure-1 disambiguation.
fn bench_e2_figure1(c: &mut Criterion) {
    let (p, d) = dump_for(BugKind::Figure1, 10);
    c.bench_function("e2_figure1_synthesis", |b| {
        b.iter(|| {
            let engine = ResEngine::new(&p, ResConfig::default());
            std::hint::black_box(engine.synthesize(&d))
        })
    });
}

/// E3: RES vs forward ES across prefix lengths.
fn bench_e3_length_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_length_sweep");
    g.sample_size(10);
    for prefix in [100u64, 1_000, 10_000] {
        let (p, d) = dump_for(BugKind::DivByZero, prefix);
        g.bench_with_input(BenchmarkId::new("res", prefix), &(), |b, _| {
            b.iter(|| {
                let engine = ResEngine::new(&p, ResConfig::default());
                std::hint::black_box(engine.synthesize(&d))
            })
        });
        let goal = Minidump::from_coredump(&d);
        g.bench_with_input(BenchmarkId::new("forward_es", prefix), &(), |b, _| {
            b.iter(|| {
                let s = ForwardSynthesizer::new(ForwardConfig::default());
                std::hint::black_box(s.synthesize(&p, &goal))
            })
        });
    }
    g.finish();
}

/// E8: recording cost measurement.
fn bench_e8_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_recording_overhead");
    g.sample_size(10);
    let p = build(
        BugKind::DataRace,
        WorkloadParams {
            prefix_iters: 500,
            ..WorkloadParams::default()
        },
    );
    for kind in [
        RecorderKind::FullMemoryOrder,
        RecorderKind::OutputDeterministic,
        RecorderKind::None,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| std::hint::black_box(measure_recording(&p, kind, 11)))
        });
    }
    g.finish();
}

/// E11: replay latency.
fn bench_e11_replay(c: &mut Criterion) {
    let (p, d) = dump_for(BugKind::UseAfterFree, 10);
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix")
        .clone();
    c.bench_function("e11_replay_suffix", |b| {
        b.iter(|| std::hint::black_box(replay_suffix(&p, &d, &sfx)))
    });
}

/// A3: solver latency per budget.
fn bench_a3_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_solver_budget");
    g.sample_size(10);
    let (p, d) = dump_for(BugKind::HeapOverflowTainted, 10);
    for budget in [100u64, 20_000] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &(), |b, _| {
            b.iter(|| {
                let engine = ResEngine::new(
                    &p,
                    ResConfig {
                        solver: mvm_symbolic::SolverConfig {
                            max_assignments: budget,
                            ..mvm_symbolic::SolverConfig::default()
                        },
                        ..ResConfig::default()
                    },
                );
                std::hint::black_box(engine.synthesize(&d))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_e1_synthesis,
    bench_e2_figure1,
    bench_e3_length_sweep,
    bench_e8_recording,
    bench_e11_replay,
    bench_a3_solver
);
criterion_main!(benches);
