//! A minimal `std::time`-based micro-benchmark runner.
//!
//! Replaces the `criterion` dependency for the hermetic build. It keeps
//! the parts of criterion the benches actually used — named groups,
//! parameterized benchmark ids, warmup, and a robust central estimate —
//! and drops everything else (plotting, regression analysis, disk
//! state). Timings print one line per benchmark:
//!
//! ```text
//! e1_hotos_eval/div_by_zero    median 412.3µs  (min 401.1µs, max 560.0µs, 10 samples)
//! ```

use std::time::{Duration, Instant};

/// How many timed samples to collect per benchmark.
///
/// Kept small: these benches exist to flag order-of-magnitude
/// regressions, not to resolve single-digit-percent effects.
pub const DEFAULT_SAMPLES: u32 = 10;

/// Number of untimed warmup iterations before sampling.
pub const DEFAULT_WARMUP: u32 = 2;

/// A named collection of benchmarks, mirroring criterion's
/// `benchmark_group`.
pub struct Group<'a> {
    name: &'a str,
    samples: u32,
    warmup: u32,
}

impl<'a> Group<'a> {
    /// Starts a group with default sample counts.
    pub fn new(name: &'a str) -> Self {
        Group {
            name,
            samples: DEFAULT_SAMPLES,
            warmup: DEFAULT_WARMUP,
        }
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, reporting it as `group/id`.
    pub fn bench<R>(&self, id: &str, mut f: impl FnMut() -> R) -> Stats {
        let stats = run(self.samples, self.warmup, &mut f);
        println!("{}", stats.render(&format!("{}/{}", self.name, id)));
        stats
    }
}

/// Times a standalone benchmark (criterion's `bench_function`).
pub fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) -> Stats {
    let stats = run(DEFAULT_SAMPLES, DEFAULT_WARMUP, &mut f);
    println!("{}", stats.render(name));
    stats
}

/// Summary of one benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median sample duration.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples.
    pub samples: u32,
}

impl Stats {
    fn render(&self, label: &str) -> String {
        format!(
            "{label:<44} median {:>9}  (min {}, max {}, {} samples)",
            fmt_duration(self.median),
            fmt_duration(self.min),
            fmt_duration(self.max),
            self.samples,
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run<R>(samples: u32, warmup: u32, f: &mut impl FnMut() -> R) -> Stats {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort();
    Stats {
        median: times[times.len() / 2],
        min: times[0],
        max: times[times.len() - 1],
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let s = bench_function("noop", || 1 + 1);
        assert!(s.min <= s.median && s.median <= s.max);
        assert_eq!(s.samples, DEFAULT_SAMPLES);
    }

    #[test]
    fn group_respects_sample_size() {
        let s = Group::new("g").sample_size(3).bench("b", || ());
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00s");
    }
}
