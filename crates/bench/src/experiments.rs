//! The experiment suite (one function per entry of `DESIGN.md` §3).

use std::fmt::Write as _;
use std::time::Instant;

use mvm_core::{Coredump, Minidump};
use mvm_isa::{asm::assemble, Program};
use mvm_machine::{Machine, MachineConfig, Outcome};
use res_baselines::{
    measure_recording,
    ForwardConfig,
    ForwardSynthesizer,
    RecorderKind, //
};
use res_core::{
    analyze_root_cause,
    replay_suffix,
    CutReason,
    FrontierKind,
    ResConfig,
    ResEngine,
    RootCause,
    Verdict, //
};
use res_triage::{
    exploit_scale, exploitability_study, filter_corpus, hardware_scale, triage_corpus,
    triage_scale, CorpusScaleSpec,
};
use res_workloads::{build, generate_corpus, run_to_failure, BugKind, CorpusSpec, WorkloadParams};

/// A rendered experiment: an id, a table, and pass/fail of its shape
/// checks.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment id (E1..E11, A1..A3).
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
    /// The rendered table.
    pub table: String,
    /// `true` when the measured shape matches the paper's claim.
    pub shape_holds: bool,
}

fn fail_dump(kind: BugKind, params: WorkloadParams) -> (Program, Coredump) {
    let p = build(kind, params);
    let m = (0..500)
        .find_map(|s| run_to_failure(&p, s))
        .unwrap_or_else(|| panic!("workload {kind:?} never failed"));
    let d = Coredump::capture(&m);
    (p, d)
}

/// E1 — the paper's §4 evaluation: three synthetic concurrency bugs;
/// correct root cause, under a minute, no false positives.
pub fn e1_hotos_eval() -> Experiment {
    let mut table = String::from(
        "bug                    | root cause found      | suffix | time   | false pos\n\
         -----------------------+-----------------------+--------+--------+----------\n",
    );
    let mut all_ok = true;
    for kind in BugKind::HOTOS_EVAL {
        let (p, d) = fail_dump(kind, WorkloadParams::default());
        let t0 = Instant::now();
        let engine = ResEngine::new(&p, ResConfig::default());
        let result = engine.synthesize(&d);
        // Replay is RES's own validation step (§2.1 requirement 5):
        // candidate suffixes that fail to reproduce the dump are
        // discarded by the tool. A *false positive* is a suffix that
        // replays to the exact failure but exhibits a different root
        // cause.
        let mut found: Option<RootCause> = None;
        let mut false_pos = 0usize;
        for sfx in &result.suffixes {
            if !replay_suffix(&p, &d, sfx).reproduced {
                continue;
            }
            let rc = analyze_root_cause(&p, &d, sfx);
            if rc.is_concurrency() {
                if found.is_none() {
                    found = Some(rc);
                }
            } else {
                false_pos += 1;
            }
        }
        let elapsed = t0.elapsed();
        let ok = found.is_some() && elapsed.as_secs() < 60 && false_pos == 0;
        all_ok &= ok;
        let _ = writeln!(
            table,
            "{:<22} | {:<21} | {:>6} | {:>5.0}ms | {}",
            kind.name(),
            found
                .map(|rc| rc.bucket_key().split(':').next().unwrap_or("?").to_string())
                .unwrap_or_else(|| "NOT FOUND".into()),
            result.suffixes.first().map(|s| s.len()).unwrap_or(0),
            elapsed.as_secs_f64() * 1000.0,
            false_pos
        );
    }
    Experiment {
        id: "E1",
        claim: "3 concurrency bugs: correct root cause < 1 min, 0 false positives",
        table,
        shape_holds: all_ok,
    }
}

/// E2 — Figure 1: predecessor disambiguation via the coredump.
pub fn e2_figure1() -> Experiment {
    let (p, d) = fail_dump(BugKind::Figure1, WorkloadParams::default());
    let t0 = Instant::now();
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let elapsed = t0.elapsed();
    let main = p.func_by_name("main").unwrap();
    let pred1 = p.func(main).block_by_label("pred1").unwrap();
    let pred2 = p.func(main).block_by_label("pred2").unwrap();
    let mut through_pred1 = 0;
    let mut through_pred2 = 0;
    for sfx in &result.suffixes {
        let blocks: Vec<_> = sfx.steps.iter().map(|s| s.start.block).collect();
        if blocks.contains(&pred1) {
            through_pred1 += 1;
        }
        if blocks.contains(&pred2) {
            through_pred2 += 1;
        }
    }
    let shape = through_pred1 >= 1 && through_pred2 == 0;
    let table = format!(
        "suffixes | via Pred1 (x=1, matches dump) | via Pred2 (x=2, discarded) | time\n\
         ---------+-------------------------------+----------------------------+------\n\
         {:>8} | {:>29} | {:>26} | {:.0}ms\n",
        result.suffixes.len(),
        through_pred1,
        through_pred2,
        elapsed.as_secs_f64() * 1000.0
    );
    Experiment {
        id: "E2",
        claim: "Figure 1: only the predecessor matching the dump (x=1) survives",
        table,
        shape_holds: shape,
    }
}

/// E3 — the title claim: RES cost is flat in execution length; forward
/// execution synthesis scales with it.
pub fn e3_length_sweep() -> Experiment {
    let mut table = String::from(
        "prefix iters | exec steps | RES nodes | RES solver h/m | RES time | fwd-ES steps | fwd solver h/m | fwd-ES time\n\
         -------------+------------+-----------+----------------+----------+--------------+----------------+------------\n",
    );
    let mut res_times = Vec::new();
    let mut fwd_steps = Vec::new();
    for prefix in [100u64, 1_000, 10_000, 100_000] {
        let params = WorkloadParams {
            prefix_iters: prefix,
            ..WorkloadParams::default()
        };
        let (p, d) = fail_dump(BugKind::DivByZero, params);
        let exec_len = d.steps;
        let t0 = Instant::now();
        let engine = ResEngine::new(&p, ResConfig::default());
        let result = engine.synthesize(&d);
        let res_time = t0.elapsed();
        assert!(matches!(result.verdict, Verdict::SuffixFound));
        let goal = Minidump::from_coredump(&d);
        let t1 = Instant::now();
        let fwd = ForwardSynthesizer::new(ForwardConfig::default()).synthesize(&p, &goal);
        let fwd_time = t1.elapsed();
        res_times.push(res_time.as_secs_f64());
        fwd_steps.push(fwd.total_steps);
        let _ = writeln!(
            table,
            "{:>12} | {:>10} | {:>9} | {:>14} | {:>6.1}ms | {:>12} | {:>14} | {:>8.1}ms",
            prefix,
            exec_len,
            result.stats.nodes_expanded,
            format!(
                "{}/{}",
                result.stats.solver.cache_hits, result.stats.solver.cache_misses
            ),
            res_time.as_secs_f64() * 1000.0,
            fwd.total_steps,
            format!(
                "{}/{}",
                fwd.stats.solver.cache_hits, fwd.stats.solver.cache_misses
            ),
            fwd_time.as_secs_f64() * 1000.0
        );
    }
    // Shape: forward cost grows by orders of magnitude; RES stays flat
    // (within 20× across a 1000× length increase, vs >100× for fwd).
    let res_ratio = res_times.last().unwrap() / res_times.first().unwrap().max(1e-9);
    let fwd_ratio =
        *fwd_steps.last().unwrap() as f64 / (*fwd_steps.first().unwrap() as f64).max(1.0);
    let mut shape = fwd_ratio > 100.0 && res_ratio < 20.0;
    let _ = writeln!(
        table,
        "growth over sweep: RES time ×{res_ratio:.1}, forward-ES steps ×{fwd_ratio:.0}"
    );

    // Worker sweep: both algorithms under identical parallel
    // accounting. RES speculates with N sharded workers then replays
    // sequentially — the suffixes must be byte-identical at every
    // worker count (the shape check); wall clock and the speculative
    // node counts are informational (speedup needs spare cores).
    let params = WorkloadParams {
        prefix_iters: 10_000,
        ..WorkloadParams::default()
    };
    let (p, d) = fail_dump(BugKind::DivByZero, params);
    let goal = Minidump::from_coredump(&d);
    let _ = writeln!(
        table,
        "\nworkers | RES time | speedup | spec nodes | cache entries | suffixes identical | fwd-ES time\n\
         --------+----------+---------+------------+---------------+--------------------+------------"
    );
    let mut golden: Option<String> = None;
    let mut base_time = 0.0f64;
    for workers in [1usize, 2, 4] {
        let engine = ResEngine::new(&p, ResConfig::builder().workers(workers).build());
        let t0 = Instant::now();
        let result = engine.synthesize(&d);
        let res_time = t0.elapsed().as_secs_f64();
        if workers == 1 {
            base_time = res_time;
        }
        let rendering = format!("{:?}", result.suffixes);
        let identical = match &golden {
            None => {
                golden = Some(rendering);
                true
            }
            Some(g) => *g == rendering,
        };
        shape &= identical;
        let (spec_nodes, cache_entries) = result
            .parallel
            .as_ref()
            .map(|r| (r.speculative.nodes_expanded, r.cache_entries))
            .unwrap_or((0, 0));
        let fwd_cfg = ForwardConfig {
            workers,
            ..ForwardConfig::default()
        };
        let t1 = Instant::now();
        let _ = ForwardSynthesizer::new(fwd_cfg).synthesize(&p, &goal);
        let fwd_time = t1.elapsed().as_secs_f64();
        let _ = writeln!(
            table,
            "{:>7} | {:>6.1}ms | {:>6.2}x | {:>10} | {:>13} | {:>18} | {:>8.1}ms",
            workers,
            res_time * 1000.0,
            base_time / res_time.max(1e-9),
            spec_nodes,
            cache_entries,
            if identical { "yes" } else { "NO" },
            fwd_time * 1000.0
        );
    }

    // Speculative yield: subtree-verdict certificates let the replay
    // skip certified-exhausted subtrees outright (see E3y for the
    // full protocol; the shape there is part of this experiment's).
    let (rows, yield_shape) = speculative_yield_bench();
    let _ = writeln!(table, "\n{}", render_yield_table(&rows));
    shape &= yield_shape;

    Experiment {
        id: "E3",
        claim: "RES cost independent of execution length; forward ES scales with it",
        table,
        shape_holds: shape,
    }
}

/// The E3 speculative-yield workload: a churn prefix (the "arbitrarily
/// long" knob), a fat 8-block arithmetic spine that carries the one
/// surviving suffix, and — joining the spine just before the crash —
/// three 15-block dead-end stub trees whose every backward hypothesis
/// is feasible (identity compatibility constraints the propagator
/// binds outright, so every solver answer stays renaming-equivariant)
/// but whose every leaf reconstructs far fewer instructions than the
/// spine. Under `min_suffix_steps` those subtrees finalize into
/// nothing: genuinely exhausted, certifiable, and skippable — while a
/// cache-only replay must still walk all 45 of their nodes.
fn e3_yield_program(prefix_iters: u64) -> Program {
    let mut src = format!(
        r#"
        global acc 8
        func main() {{
        entry:
            mov r20, {prefix_iters}
            addr r21, acc
            mov r11, 0
            jmp churn
        churn:
            eq r22, r20, 0
            br r22, spine1, churn_body
        churn_body:
            load r23, [r21]
            add r23, r23, r20
            xor r23, r23, 17
            store r23, [r21]
            sub r20, r20, 1
            jmp churn
        "#
    );
    for k in 1..=8 {
        let next = if k == 8 {
            "join1".to_string()
        } else {
            format!("spine{}", k + 1)
        };
        let adds: String = (0..8)
            .map(|i| format!("            add r11, r11, {}\n", k * 8 + i))
            .collect();
        src.push_str(&format!(
            "        spine{k}:\n{adds}            jmp {next}\n"
        ));
    }
    for j in 1..=3usize {
        let next = if j == 3 {
            "boom".to_string()
        } else {
            format!("join{}", j + 1)
        };
        src.push_str(&format!(
            "        join{j}:\n            mov r25, {j}\n            jmp {next}\n"
        ));
        // The dead-end stub tree: depth 4, binary, 15 blocks, feeding
        // join j. `r26` is clobbered in `boom`, so the stub writes are
        // invisible at the dump and every stub hypothesis is admitted.
        src.push_str(&format!(
            "        stub{j}_0_0:\n            mov r26, {j}\n            jmp join{j}\n"
        ));
        for lvl in 1..=3usize {
            for i in 0..(1usize << lvl) {
                let parent = format!("stub{j}_{}_{}", lvl - 1, i / 2);
                src.push_str(&format!(
                    "        stub{j}_{lvl}_{i}:\n            mov r26, {}\n            jmp {parent}\n",
                    lvl * 10 + i
                ));
            }
        }
    }
    src.push_str(
        r#"
        boom:
            mov r12, 0
            mov r26, 0
            divu r13, 1, r12
            halt
        }
        "#,
    );
    assemble(&src).unwrap()
}

/// One worker-count measurement from [`speculative_yield_bench`]: a
/// warm cache-only replay versus a warm verdict-consulting replay over
/// the same store protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculativeYieldRow {
    /// Speculation worker count for both legs.
    pub workers: u64,
    /// Nodes the cache-only (verdict-blind) replay expanded.
    pub baseline_replayed: u64,
    /// Nodes the verdict-consulting replay expanded.
    pub yield_replayed: u64,
    /// Certified subtrees the consulting replay skipped.
    pub skipped_subtrees: u64,
    /// Nodes inside those skipped subtrees (folded into the totals).
    pub skipped_nodes: u64,
    /// Warm cache-only replay wall-clock, milliseconds.
    pub baseline_ms: f64,
    /// Warm verdict-consulting replay wall-clock, milliseconds.
    pub yield_ms: f64,
    /// Both legs synthesized byte-identical suffixes to the store-less
    /// sequential golden.
    pub identical: bool,
    /// Effective exploration totals (actual + certified-skipped
    /// accounting, solver assignments excluded) reconciled exactly.
    pub reconciled: bool,
}

mvm_json::json_struct!(SpeculativeYieldRow {
    workers,
    baseline_replayed,
    yield_replayed,
    skipped_subtrees,
    skipped_nodes,
    baseline_ms,
    yield_ms,
    identical,
    reconciled
});

/// The `BENCH_e3_speculative_yield.json` artifact payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculativeYieldArtifact {
    /// Artifact id (`e3_speculative_yield`).
    pub experiment: String,
    /// Human description of the fixed workload both legs ran.
    pub workload: String,
    /// One row per worker count.
    pub rows: Vec<SpeculativeYieldRow>,
    /// The acceptance shape (see [`speculative_yield_bench`]).
    pub shape_holds: bool,
}

mvm_json::json_struct!(SpeculativeYieldArtifact {
    experiment,
    workload,
    rows,
    shape_holds
});

/// Prefix length for the speculative-yield workload.
const E3_YIELD_PREFIX: u64 = 10_000;
/// `min_suffix_steps` for both legs: above every stub-tree leaf (≤ ~17
/// reconstructed instructions), below the spine suffix (~75).
const E3_YIELD_MIN_SUFFIX: u64 = 32;

/// Measures what subtree-verdict certificates buy the replay, per
/// worker count, on [`e3_yield_program`]. Both legs use the identical
/// store protocol — a cold populating pass, then a timed warm pass —
/// and differ in exactly one bit: whether speculative yield is on. The
/// cache-only leg's store carries solver entries alone; the yield
/// leg's also carries certificates, which the warm replay consults to
/// skip certified-exhausted subtrees.
///
/// The returned shape holds when every leg is byte-identical to the
/// store-less sequential golden, every pair reconciles on effective
/// totals (assignments excluded, see `tests/verdict_soundness.rs`),
/// and at 4 workers the certificates cut replayed nodes at least 2×.
pub fn speculative_yield_bench() -> (Vec<SpeculativeYieldRow>, bool) {
    let program = e3_yield_program(E3_YIELD_PREFIX);
    let machine = (0..100)
        .find_map(|s| run_to_failure(&program, s))
        .expect("e3 yield workload must fault");
    let dump = Coredump::capture(&machine);

    let golden = {
        let engine = ResEngine::new(
            &program,
            ResConfig::builder()
                .min_suffix_steps(E3_YIELD_MIN_SUFFIX)
                .speculative_yield(false)
                .build(),
        );
        let r = engine.synthesize(&dump);
        assert!(matches!(r.verdict, Verdict::SuffixFound));
        format!("{:?} {:?}", r.verdict, r.suffixes)
    };
    let rendered = |r: &res_core::SynthesisResult| format!("{:?} {:?}", r.verdict, r.suffixes);

    let scratch = std::env::temp_dir().join(format!("res-e3-yield-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");

    let mut rows = Vec::new();
    let mut shape = true;
    for workers in [1usize, 2, 4] {
        let leg = |tag: &str, speculative_yield: bool| {
            let config = ResConfig::builder()
                .min_suffix_steps(E3_YIELD_MIN_SUFFIX)
                .workers(workers)
                .speculative_yield(speculative_yield)
                .cache_path(scratch.join(format!("{tag}-w{workers}.resstore")))
                .build();
            // Cold pass populates the store; the warm pass is measured.
            let _ = ResEngine::new(&program, config.clone()).synthesize(&dump);
            let t0 = Instant::now();
            let result = ResEngine::new(&program, config).synthesize(&dump);
            (result, t0.elapsed().as_secs_f64() * 1000.0)
        };
        let (base, baseline_ms) = leg("cache-only", false);
        let (yld, yield_ms) = leg("yield", true);

        let identical = rendered(&base) == golden && rendered(&yld) == golden;
        let mut eff_base = base.stats.effective();
        let mut eff_yld = yld.stats.effective();
        eff_base.assignments = 0;
        eff_yld.assignments = 0;
        let reconciled = eff_base == eff_yld;
        shape &= identical && reconciled;
        if workers == 4 {
            shape &= yld.stats.skipped_subtrees > 0
                && base.stats.nodes_expanded >= 2 * yld.stats.nodes_expanded;
        }
        rows.push(SpeculativeYieldRow {
            workers: workers as u64,
            baseline_replayed: base.stats.nodes_expanded,
            yield_replayed: yld.stats.nodes_expanded,
            skipped_subtrees: yld.stats.skipped_subtrees,
            skipped_nodes: yld.stats.skipped.nodes,
            baseline_ms,
            yield_ms,
            identical,
            reconciled,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);
    (rows, shape)
}

/// Renders [`speculative_yield_bench`] rows as the experiment table.
fn render_yield_table(rows: &[SpeculativeYieldRow]) -> String {
    let mut table = String::from(
        "workers | replayed (cache-only) | replayed (yield) | skipped subtrees/nodes | cache-only time | yield time | identical | reconciled\n\
         --------+-----------------------+------------------+------------------------+-----------------+------------+-----------+-----------\n",
    );
    for r in rows {
        let _ = writeln!(
            table,
            "{:>7} | {:>21} | {:>16} | {:>22} | {:>13.1}ms | {:>8.1}ms | {:>9} | {}",
            r.workers,
            r.baseline_replayed,
            r.yield_replayed,
            format!("{}/{}", r.skipped_subtrees, r.skipped_nodes),
            r.baseline_ms,
            r.yield_ms,
            if r.identical { "yes" } else { "NO" },
            if r.reconciled { "yes" } else { "NO" }
        );
    }
    table
}

/// E3y — the speculative-yield extract of E3 on its own: cheap enough
/// for CI, where it also emits the `BENCH_e3_speculative_yield.json`
/// artifact (set `RES_BENCH_OUT=<dir>`).
pub fn e3y_speculative_yield() -> Experiment {
    let (rows, shape_holds) = speculative_yield_bench();
    let table = render_yield_table(&rows);
    if let Some(dir) = std::env::var_os("RES_BENCH_OUT") {
        let artifact = SpeculativeYieldArtifact {
            experiment: "e3_speculative_yield".to_string(),
            workload: format!(
                "e3-yield program, prefix_iters={E3_YIELD_PREFIX}, \
                 min_suffix_steps={E3_YIELD_MIN_SUFFIX}, warm store protocol"
            ),
            rows,
            shape_holds,
        };
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join("BENCH_e3_speculative_yield.json");
        if let Err(err) = std::fs::write(&path, mvm_json::to_string_pretty(&artifact)) {
            eprintln!("cannot write {}: {err}", path.display());
        }
    }
    Experiment {
        id: "E3y",
        claim: "subtree-verdict certificates let the replay skip certified subtrees",
        table,
        shape_holds,
    }
}

/// The E4 breadcrumb workload: a chain of input-driven diamonds before
/// the crash, so the dump alone cannot disambiguate the path.
fn e4_program() -> Program {
    assemble(
        r#"
        global acc 8
        func main() {
        entry:
            addr r10, acc
            mov r11, 0
            input r0, net
            remu r1, r0, 2
            br r1, d1a, d1b
        d1a:
            add r11, r11, 0
            jmp j1
        d1b:
            add r11, r11, 0
            jmp j1
        j1:
            input r2, net
            remu r3, r2, 2
            br r3, d2a, d2b
        d2a:
            add r11, r11, 0
            jmp j2
        d2b:
            add r11, r11, 0
            jmp j2
        j2:
            input r4, net
            remu r5, r4, 2
            br r5, d3a, d3b
        d3a:
            add r11, r11, 0
            jmp boom
        d3b:
            add r11, r11, 0
            jmp boom
        boom:
            store r11, [r10]
            mov r12, 0
            divu r13, 1, r12
            halt
        }
        "#,
    )
    .unwrap()
}

/// E4 — breadcrumbs (§2.4): LBR and error-log hints shrink the search.
pub fn e4_breadcrumbs() -> Experiment {
    let p = e4_program();
    let mut m = Machine::new(
        p.clone(),
        MachineConfig {
            input: mvm_machine::InputSource::Seeded { seed: 99 },
            lbr_capacity: 16,
            ..MachineConfig::default()
        },
    );
    let o = m.run();
    assert!(matches!(o, Outcome::Faulted { .. }));
    let d = Coredump::capture(&m);
    let mut table = String::from(
        "hints         | hypotheses tested | suffixes | lbr-pruned\n\
         --------------+-------------------+----------+-----------\n",
    );
    let mut hyps = Vec::new();
    for (name, use_lbr) in [("none", false), ("LBR-16", true)] {
        let config = ResConfig::builder()
            .use_lbr(use_lbr)
            .max_suffixes(8)
            .max_depth(16)
            .build();
        let engine = ResEngine::new(&p, config);
        let result = engine.synthesize(&d);
        hyps.push(result.stats.hypotheses);
        let _ = writeln!(
            table,
            "{:<13} | {:>17} | {:>8} | {:>9}",
            name,
            result.stats.hypotheses,
            result.suffixes.len(),
            result.stats.rejected_lbr
        );
    }
    let mut shape = hyps[1] < hyps[0];

    // Frontier × worker sweep over the same dump: exploration order
    // changes how many nodes the authoritative replay expands; worker
    // count must not (replay is sequential — extra workers only warm
    // the solver cache, so `replay nodes` must be constant along each
    // row, the added shape check).
    let _ = writeln!(
        table,
        "\nfrontier  | workers | replay nodes | spec nodes | suffixes\n\
         ----------+---------+--------------+------------+---------"
    );
    for kind in [
        FrontierKind::Dfs,
        FrontierKind::Bfs,
        FrontierKind::BestFirst,
    ] {
        let mut baseline_nodes: Option<u64> = None;
        for workers in [1usize, 2, 4] {
            let config = ResConfig::builder()
                .frontier(kind)
                .workers(workers)
                .max_suffixes(8)
                .max_depth(16)
                .build();
            let engine = ResEngine::new(&p, config);
            let result = engine.synthesize(&d);
            let nodes = result.stats.nodes_expanded;
            shape &= *baseline_nodes.get_or_insert(nodes) == nodes;
            let spec = result
                .parallel
                .as_ref()
                .map(|r| r.speculative.nodes_expanded)
                .unwrap_or(0);
            let _ = writeln!(
                table,
                "{:<9} | {:>7} | {:>12} | {:>10} | {:>8}",
                format!("{kind:?}"),
                workers,
                nodes,
                spec,
                result.suffixes.len()
            );
        }
    }
    Experiment {
        id: "E4",
        claim: "LBR breadcrumbs trim the search; worker count never changes the replayed search",
        table,
        shape_holds: shape,
    }
}

/// E5 — triaging: stack bucketing vs root-cause bucketing.
pub fn e5_triage() -> Experiment {
    let corpus = generate_corpus(&CorpusSpec {
        kinds: vec![
            BugKind::RaceNullDeref,
            BugKind::UafSameStack,
            BugKind::UseAfterFree,
            BugKind::DivByZero,
            BugKind::SemanticAssert,
        ],
        per_kind: 4,
        ..CorpusSpec::default()
    });
    let cmp = triage_corpus(&corpus, 2, &ResConfig::default());
    let table = format!(
        "method              | buckets | bugs | mis-bucketed\n\
         --------------------+---------+------+-------------\n\
         WER-like (stack)    | {:>7} | {:>4} | {:>10.0}%\n\
         RES (root cause)    | {:>7} | {:>4} | {:>10.0}%\n\
         corpus: {} reports from {} distinct bugs\n",
        cmp.wer.bucket_count(),
        cmp.wer.distinct_bugs,
        cmp.wer.misbucket_rate * 100.0,
        cmp.res.bucket_count(),
        cmp.res.distinct_bugs,
        cmp.res.misbucket_rate * 100.0,
        corpus.len(),
        cmp.wer.distinct_bugs,
    );
    let shape = cmp.res.misbucket_rate < cmp.wer.misbucket_rate && cmp.wer.misbucket_rate > 0.0;
    Experiment {
        id: "E5",
        claim: "stack bucketing mis-buckets a large fraction; root-cause bucketing far less",
        table,
        shape_holds: shape,
    }
}

/// E6 — exploitability: heuristic vs suffix-taint classification.
pub fn e6_exploitability() -> Experiment {
    let corpus = generate_corpus(&CorpusSpec {
        kinds: vec![
            BugKind::HeapOverflowTainted,
            BugKind::HeapOverflowLocal,
            BugKind::UseAfterFree,
            BugKind::DivByZero,
        ],
        per_kind: 3,
        ..CorpusSpec::default()
    });
    let study = exploitability_study(&corpus, &ResConfig::default());
    let table = format!(
        "method        | reports | classification errors\n\
         --------------+---------+----------------------\n\
         !exploitable  | {:>7} | {:>20}\n\
         RES taint     | {:>7} | {:>20}\n",
        study.total, study.heuristic_errors, study.total, study.res_errors
    );
    let shape = study.res_errors < study.heuristic_errors;
    Experiment {
        id: "E6",
        claim: "suffix taint evidence beats fault-shape heuristics",
        table,
        shape_holds: shape,
    }
}

/// E7 — hardware-error identification.
pub fn e7_hardware() -> Experiment {
    let corpus = generate_corpus(&CorpusSpec {
        kinds: vec![
            BugKind::DivByZero,
            BugKind::SemanticAssert,
            BugKind::UseAfterFree,
        ],
        per_kind: 4,
        ..CorpusSpec::default()
    });
    let study = filter_corpus(&corpus, &ResConfig::default(), None);
    let table = format!(
        "reports | hw-injected | flagged | precision | recall\n\
         --------+-------------+---------+-----------+-------\n\
         {:>7} | {:>11} | {:>7} | {:>8.0}% | {:>4.0}%\n",
        study.reports.len(),
        study.true_positives + study.false_negatives,
        study.true_positives + study.false_positives,
        study.precision() * 100.0,
        study.recall() * 100.0
    );
    let shape = study.false_positives == 0 && study.recall() > 0.5;
    Experiment {
        id: "E7",
        claim:
            "dump/execution inconsistencies identify hardware errors; no software bug is misflagged",
        table,
        shape_holds: shape,
    }
}

/// E8 — record-replay overhead (the paper's §1 motivation).
pub fn e8_recording_overhead() -> Experiment {
    let p = build(
        BugKind::DataRace,
        WorkloadParams {
            prefix_iters: 2_000,
            ..WorkloadParams::default()
        },
    );
    let mut table = String::from(
        "recorder                              | overhead | log bytes | bytes/Kstep\n\
         --------------------------------------+----------+-----------+------------\n",
    );
    let mut rows = Vec::new();
    for kind in [
        RecorderKind::FullMemoryOrder,
        RecorderKind::OutputDeterministic,
        RecorderKind::None,
    ] {
        let c = measure_recording(&p, kind, 11);
        let _ = writeln!(
            table,
            "{:<37} | {:>7.0}% | {:>9} | {:>10.1}",
            kind.name(),
            c.overhead_percent,
            c.log_bytes,
            c.log_bytes as f64 / (c.base_steps as f64 / 1000.0)
        );
        rows.push(c);
    }
    let shape = rows[0].overhead_percent > rows[1].overhead_percent
        && rows[1].overhead_percent > 0.0
        && rows[2].overhead_percent == 0.0
        && rows[0].overhead_percent > 150.0
        && rows[1].overhead_percent < 150.0;
    Experiment {
        id: "E8",
        claim: "always-on recording costs ~400%/~60% and unbounded logs; RES records nothing",
        table,
        shape_holds: shape,
    }
}

/// E9 — root-cause distance vs suffix budget (§2's 85% observation).
pub fn e9_suffix_budget() -> Experiment {
    // A parametric program: the bad store happens `dist` blocks before
    // the failure.
    let program_at = |dist: usize| -> Program {
        let mut filler = String::new();
        for i in 0..dist {
            let _ = writeln!(
                filler,
                "f{i}:\n  load r3, [r1]\n  add r3, r3, 1\n  store r3, [r1]\n  jmp {}",
                if i + 1 == dist {
                    "crash".to_string()
                } else {
                    format!("f{}", i + 1)
                }
            );
        }
        let first = if dist == 0 { "crash" } else { "f0" };
        assemble(&format!(
            r#"
            global v 8
            global scratch2 8
            func main() {{
            entry:
                addr r0, v
                addr r1, scratch2
                store 1, [r0]
                jmp {first}
            {filler}
            crash:
                load r2, [r0]
                eq r4, r2, 0
                assert r4, "v must be zero"
                halt
            }}
            "#,
        ))
        .unwrap()
    };
    let mut table = String::from(
        "root-cause distance (blocks) | budget 4 | budget 8 | budget 16\n\
         -----------------------------+----------+----------+----------\n",
    );
    let mut shape = true;
    for dist in [1usize, 5, 10] {
        let p = program_at(dist);
        let m = run_to_failure(&p, 1).expect("must fail");
        let d = Coredump::capture(&m);
        let mut row = format!("{dist:>28} |");
        for budget in [4usize, 8, 16] {
            let engine = ResEngine::new(&p, ResConfig::builder().max_depth(budget).build());
            let result = engine.synthesize(&d);
            // The root cause (the `store 1`) is in the window iff some
            // reproducing suffix contains the entry block.
            let main = p.func_by_name("main").unwrap();
            let entry = p.func(main).block_by_label("entry").unwrap();
            let found = result.suffixes.iter().any(|s| {
                s.steps.iter().any(|st| st.start.block == entry)
                    && replay_suffix(&p, &d, s).reproduced
            });
            let _ = write!(row, " {:>8} |", if found { "found" } else { "-" });
            // Expected: found iff budget comfortably exceeds distance.
            if budget >= dist + 3 && !found {
                shape = false;
            }
        }
        let _ = writeln!(table, "{}", row.trim_end_matches(" |"));
    }
    let _ = writeln!(
        table,
        "(root cause enters the window once the block budget covers its distance)"
    );
    Experiment {
        id: "E9",
        claim: "a short suffix suffices when the root cause is near the failure",
        table,
        shape_holds: shape,
    }
}

/// E10 — hard-to-invert constructs (§6): re-execution vs reverse-only.
pub fn e10_hard_constructs() -> Experiment {
    let (p, d) = fail_dump(
        BugKind::HashChain,
        WorkloadParams {
            hash_rounds: 16,
            ..WorkloadParams::default()
        },
    );
    let mut table = String::from(
        "strategy                      | crossed hash call | suffix blocks\n\
         ------------------------------+-------------------+--------------\n",
    );
    let hash_fn = p.func_by_name("hash").unwrap();
    let mut crossed = Vec::new();
    for (name, budget) in [
        ("reverse-only (tiny budget)", 8u64),
        ("re-execution (§6)", 4096),
    ] {
        let engine = ResEngine::new(
            &p,
            ResConfig::builder()
                .hyp_max_steps(budget)
                .max_depth(8)
                .build(),
        );
        let result = engine.synthesize(&d);
        let did = result.suffixes.iter().any(|s| {
            s.steps
                .iter()
                .any(|st| st.transfers.iter().any(|t| t.to.func == hash_fn))
        });
        crossed.push(did);
        let _ = writeln!(
            table,
            "{:<29} | {:>17} | {:>12}",
            name,
            if did { "yes" } else { "no" },
            result.suffixes.iter().map(|s| s.len()).max().unwrap_or(0)
        );
    }
    let shape = !crossed[0] && crossed[1];
    Experiment {
        id: "E10",
        claim: "hash constructs resist inversion but yield to bounded re-execution",
        table,
        shape_holds: shape,
    }
}

/// E11 — deterministic replay and §3.3 debugging aids.
pub fn e11_replay_determinism() -> Experiment {
    let (p, d) = fail_dump(BugKind::UseAfterFree, WorkloadParams::default());
    let engine = ResEngine::new(&p, ResConfig::default());
    let result = engine.synthesize(&d);
    let sfx = result
        .suffixes
        .iter()
        .find(|s| replay_suffix(&p, &d, s).reproduced)
        .expect("reproducing suffix");
    let mut identical = 0;
    const RUNS: usize = 100;
    for _ in 0..RUNS {
        let rep = replay_suffix(&p, &d, sfx);
        if rep.reproduced {
            identical += 1;
        }
    }
    let (reads, writes) = res_core::debugaid::focus_report(sfx);
    let table = format!(
        "replays | identical | focus read set | focus write set | dump pages\n\
         --------+-----------+----------------+-----------------+-----------\n\
         {:>7} | {:>9} | {:>14} | {:>15} | {:>9}\n",
        RUNS,
        identical,
        reads.len(),
        writes.len(),
        d.memory.page_count()
    );
    Experiment {
        id: "E11",
        claim: "suffixes replay deterministically; read/write sets focus attention",
        table,
        shape_holds: identical == RUNS,
    }
}

/// A1 — ablation: the `S' ⊇ Spost` check is what kills wrong suffixes.
pub fn a1_overapprox_ablation() -> Experiment {
    let (p, d) = fail_dump(BugKind::Figure1, WorkloadParams::default());
    let mut table = String::from(
        "compat check | suffixes | replay-verified | false suffixes\n\
         -------------+----------+-----------------+---------------\n",
    );
    let mut false_counts = Vec::new();
    for (name, skip) in [("on", false), ("off (ablated)", true)] {
        let engine = ResEngine::new(
            &p,
            ResConfig::builder()
                .skip_compat_check(skip)
                .max_suffixes(8)
                .build(),
        );
        let result = engine.synthesize(&d);
        let verified = result
            .suffixes
            .iter()
            .filter(|s| replay_suffix(&p, &d, s).reproduced)
            .count();
        let false_suffixes = result.suffixes.len() - verified;
        false_counts.push(false_suffixes);
        let _ = writeln!(
            table,
            "{:<12} | {:>8} | {:>15} | {:>13}",
            name,
            result.suffixes.len(),
            verified,
            false_suffixes
        );
    }
    let shape = false_counts[0] == 0 && false_counts[1] > 0;
    Experiment {
        id: "A1",
        claim: "without the over-approximation check, infeasible suffixes are admitted",
        table,
        shape_holds: shape,
    }
}

/// A2 — full coredump vs minidump (§1: "strictly more powerful").
pub fn a2_dump_vs_minidump() -> Experiment {
    let (p, d) = fail_dump(BugKind::Figure1, WorkloadParams::default());
    let mut table = String::from(
        "input            | suffixes | replay-verified | approximate\n\
         -----------------+----------+-----------------+------------\n",
    );
    let mut verified_counts = Vec::new();
    for (name, opaque) in [("full coredump", false), ("minidump only", true)] {
        let engine = ResEngine::new(
            &p,
            ResConfig::builder()
                .opaque_memory(opaque)
                .max_suffixes(8)
                .build(),
        );
        let result = engine.synthesize(&d);
        let verified = result
            .suffixes
            .iter()
            .filter(|s| replay_suffix(&p, &d, s).reproduced)
            .count();
        verified_counts.push(verified);
        let approx = result.suffixes.iter().filter(|s| s.approximate).count();
        let _ = writeln!(
            table,
            "{:<16} | {:>8} | {:>15} | {:>10}",
            name,
            result.suffixes.len(),
            verified,
            approx
        );
    }
    let shape = verified_counts[0] > 0 && verified_counts[0] >= verified_counts[1];
    Experiment {
        id: "A2",
        claim: "the full dump pins the suffix; minidumps leave it ambiguous",
        table,
        shape_holds: shape,
    }
}

/// A3 — solver budget sweep.
pub fn a3_solver_budget() -> Experiment {
    let (p, d) = fail_dump(BugKind::HeapOverflowTainted, WorkloadParams::default());
    let mut table = String::from(
        "solver budget (assignments) | verdict      | unknowns kept (budget/incomplete) | cache h/m | time\n\
         ----------------------------+--------------+-----------------------------------+-----------+------\n",
    );
    let mut found = Vec::new();
    for budget in [20u64, 500, 20_000] {
        let engine = ResEngine::new(
            &p,
            ResConfig::builder()
                .solver(mvm_symbolic::SolverConfig {
                    max_assignments: budget,
                    ..mvm_symbolic::SolverConfig::default()
                })
                .build(),
        );
        let t0 = Instant::now();
        let result = engine.synthesize(&d);
        let verdict = match result.verdict {
            Verdict::SuffixFound => "suffix found",
            Verdict::NoFeasibleSuffix { .. } => "no suffix",
            Verdict::BudgetExhausted => "budget out",
        };
        found.push(matches!(result.verdict, Verdict::SuffixFound));
        let _ = writeln!(
            table,
            "{:>27} | {:<12} | {:>33} | {:>9} | {:.0}ms",
            budget,
            verdict,
            format!(
                "{} ({}/{})",
                result.stats.unknown_accepted,
                result.stats.unknown_accepted_budget,
                result.stats.unknown_accepted_incomplete
            ),
            format!(
                "{}/{}",
                result.stats.solver.cache_hits, result.stats.solver.cache_misses
            ),
            t0.elapsed().as_secs_f64() * 1000.0
        );
    }
    let shape = *found.last().unwrap();
    Experiment {
        id: "A3",
        claim: "larger solver budgets trade time for fewer Unknowns",
        table,
        shape_holds: shape,
    }
}

/// E12 — bounded wall clock: an expired deadline is a reported cut with
/// a well-formed partial result, not a hang or a bogus verdict.
pub fn e12_deadline() -> Experiment {
    let (p, d) = fail_dump(
        BugKind::DivByZero,
        WorkloadParams {
            prefix_iters: 10_000,
            ..WorkloadParams::default()
        },
    );
    let mut table = String::from(
        "deadline | verdict      | cut      | suffixes | abandoned nodes\n\
         ---------+--------------+----------+----------+----------------\n",
    );
    let mut shape = true;
    for (name, deadline) in [("0ms", Some(std::time::Duration::ZERO)), ("none", None)] {
        let engine = ResEngine::new(&p, ResConfig::builder().deadline(deadline).build());
        let result = engine.synthesize(&d);
        let verdict = match result.verdict {
            Verdict::SuffixFound => "suffix found",
            Verdict::NoFeasibleSuffix { .. } => "no suffix",
            Verdict::BudgetExhausted => "budget out",
        };
        if deadline.is_some() {
            // The partial result must be well-formed: the cut recorded,
            // the abandoned frontier accounted, no half-built suffixes.
            shape &= result.stats.cut == Some(CutReason::Deadline)
                && matches!(result.verdict, Verdict::BudgetExhausted)
                && result.suffixes.is_empty()
                && result.stats.abandoned.nodes >= 1;
        } else {
            shape &= matches!(result.verdict, Verdict::SuffixFound) && result.stats.cut.is_none();
        }
        let _ = writeln!(
            table,
            "{:<8} | {:<12} | {:<8} | {:>8} | {:>15}",
            name,
            verdict,
            result
                .stats
                .cut
                .map(|c| format!("{c:?}"))
                .unwrap_or_else(|| "-".into()),
            result.suffixes.len(),
            result.stats.abandoned.nodes
        );
    }
    Experiment {
        id: "E12",
        claim: "an expired deadline yields CutReason::Deadline and a well-formed partial result",
        table,
        shape_holds: shape,
    }
}

/// E13 — the persistent cross-run store: a warm run over a populated
/// store answers repeated solver queries from disk (absorbed-hit count
/// > 0) yet synthesizes byte-identical suffixes to the cold run.
pub fn e13_store_warm() -> Experiment {
    let (p, d) = fail_dump(BugKind::UseAfterFree, WorkloadParams::default());
    let dir = std::env::temp_dir().join(format!("res-e13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("store.resstore");

    // Store-less baseline: what a run without any persistence does.
    let t0 = Instant::now();
    let baseline = ResEngine::new(&p, ResConfig::default()).synthesize(&d);
    let base_time = t0.elapsed();

    // Cold: the store is missing; this run populates it.
    let t1 = Instant::now();
    let cold_engine = ResEngine::new(&p, ResConfig::builder().cache_path(&path).build());
    let cold = cold_engine.synthesize(&d);
    let cold_time = t1.elapsed();

    // Warm: a fresh engine (fresh process, as far as the solver is
    // concerned) absorbs the populated store before searching.
    let t2 = Instant::now();
    let warm_engine = ResEngine::new(&p, ResConfig::builder().cache_path(&path).build());
    let warm = warm_engine.synthesize(&d);
    let warm_time = t2.elapsed();

    let golden = format!("{:?}", baseline.suffixes);
    let mut table = String::from(
        "run      | store entries in | store hits | appended | suffixes identical | solver h/m | time\n\
         ---------+------------------+------------+----------+--------------------+------------+------\n",
    );
    let mut shape = true;
    for (name, result, time) in [
        ("no store", &baseline, base_time),
        ("cold", &cold, cold_time),
        ("warm", &warm, warm_time),
    ] {
        let identical = format!("{:?}", result.suffixes) == golden;
        shape &= identical;
        let (loaded, hits, appended) = result
            .store
            .as_ref()
            .map(|s| (s.loaded_entries, s.store_hits, s.appended_entries))
            .unwrap_or((0, 0, 0));
        let _ = writeln!(
            table,
            "{:<8} | {:>16} | {:>10} | {:>8} | {:>18} | {:>10} | {:.0}ms",
            name,
            loaded,
            hits,
            appended,
            if identical { "yes" } else { "NO" },
            format!(
                "{}/{}",
                result.stats.solver.cache_hits, result.stats.solver.cache_misses
            ),
            time.as_secs_f64() * 1000.0
        );
    }
    let cold_report = cold.store.expect("cold run has a store");
    let warm_report = warm.store.expect("warm run has a store");
    // The cold run starts empty, serves no store hits, and commits its
    // results; the warm run loads them, serves hits, and (having run the
    // identical deterministic search) has nothing new to append.
    shape &= cold_report.store_hits == 0
        && cold_report.appended_entries > 0
        && cold_report.committed
        && warm_report.loaded_entries > 0
        && warm_report.store_hits > 0
        && warm_report.appended_entries == 0;
    let _ = writeln!(
        table,
        "cold {:.0}ms vs warm {:.0}ms wall clock; store {} entries on disk",
        cold_time.as_secs_f64() * 1000.0,
        warm_time.as_secs_f64() * 1000.0,
        warm_report.loaded_entries,
    );
    let _ = std::fs::remove_dir_all(&dir);
    Experiment {
        id: "E13",
        claim: "a warm store serves cross-run solver hits; suffixes stay byte-identical",
        table,
        shape_holds: shape,
    }
}

// --- Corpus-scale experiments (E5c/E6c/E7c) -------------------------
//
// The same three use cases, run over a *generated* population of
// labeled programs (`res-gen`) instead of the fixed handwritten
// workloads, so each rate becomes a min/median/max distribution over
// shards. Knobs (all env vars, so CI and the full sweep share one
// binary):
//
// * `RES_CORPUS_PROGRAMS` — population size (default 200);
// * `RES_GEN_SMOKE` — overrides the population for the fast CI gate;
// * `RES_HARNESS_THREADS` — worker threads (default `auto_workers`);
// * `RES_CORPUS_STORE` — shared store directory (default: a per-process
//   temp directory shared by all three experiments, so E6c and E7c
//   reuse solver results E5c already paid for).

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The generated population size: the smoke knob wins, then the
/// programs knob, then the full-sweep default of 200.
fn corpus_programs() -> usize {
    match std::env::var("RES_GEN_SMOKE") {
        Ok(v) => v.parse().unwrap_or(8).max(1),
        Err(_) => env_usize("RES_CORPUS_PROGRAMS", 200).max(1),
    }
}

fn corpus_threads() -> usize {
    env_usize("RES_HARNESS_THREADS", res_core::auto_workers()).max(1)
}

/// One shared store directory per process: all three corpus experiments
/// route their solver results through it, so the per-fingerprint layout
/// sees hundreds of distinct fingerprints in one place.
fn corpus_store_dir() -> std::path::PathBuf {
    match std::env::var_os("RES_CORPUS_STORE") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("res-corpus-store-{}", std::process::id())),
    }
}

/// The corpus experiments journal their own per-program counters to
/// `<id>.journal.jsonl` under the `RES_TRACE` directory (the harness's
/// `harness.jsonl` only sees one span per experiment).
fn corpus_recorder(id: &str) -> res_obs::Recorder {
    match std::env::var_os("RES_TRACE") {
        Some(dir) => res_obs::Recorder::journal(
            std::path::Path::new(&dir).join(format!("{id}.journal.jsonl")),
        ),
        None => res_obs::Recorder::disabled(),
    }
}

fn corpus_spec(
    classes: Vec<res_workloads::GenClass>,
    reports_per_program: usize,
) -> CorpusScaleSpec {
    let programs = corpus_programs();
    CorpusScaleSpec {
        classes,
        programs,
        reports_per_program,
        shards: 10.min(programs),
        threads: corpus_threads(),
        seed: 0xc0_9b5,
        size: 1,
    }
}

/// E5c — triaging rate distributions over a generated population.
pub fn e5c_triage_corpus() -> Experiment {
    use res_workloads::GenClass;
    let spec = corpus_spec(GenClass::ALL.to_vec(), 3);
    let rec = corpus_recorder("E5c");
    let rep = triage_scale(&spec, &ResConfig::default(), &corpus_store_dir(), &rec);
    rec.finish();
    let table = format!(
        "method              | mis-bucketed min/med/max (per shard) | pooled\n\
         --------------------+--------------------------------------+-------\n\
         WER-like (stack)    | {:>36} | {:>5.1}%\n\
         RES (root cause)    | {:>36} | {:>5.1}%\n\
         population: {} generated programs ({} classes), {} reports, {} threads\n",
        rep.wer.pct(),
        rep.wer_total * 100.0,
        rep.res.pct(),
        rep.res_total * 100.0,
        rep.programs,
        spec.classes.len(),
        rep.reports,
        spec.threads,
    );
    let shape = rep.res_total < rep.wer_total && rep.wer_total > 0.0;
    Experiment {
        id: "E5c",
        claim: "root-cause bucketing beats stack bucketing across a generated program population",
        table,
        shape_holds: shape,
    }
}

/// E6c — exploitability error distributions over a generated population.
pub fn e6c_exploitability_corpus() -> Experiment {
    use res_workloads::GenClass;
    let spec = corpus_spec(
        vec![
            GenClass::TaintedOverflow,
            GenClass::LocalOverflow,
            GenClass::UseAfterFree,
            GenClass::DivByZero,
        ],
        3,
    );
    let rec = corpus_recorder("E6c");
    let rep = exploit_scale(&spec, &ResConfig::default(), &corpus_store_dir(), &rec);
    rec.finish();
    let table = format!(
        "method        | error rate min/med/max (per shard)   | pooled\n\
         --------------+--------------------------------------+-------\n\
         !exploitable  | {:>36} | {:>5.1}%\n\
         RES taint     | {:>36} | {:>5.1}%\n\
         population: {} generated programs, {} reports, {} threads\n",
        rep.heur.pct(),
        rep.heur_total * 100.0,
        rep.res.pct(),
        rep.res_total * 100.0,
        rep.programs,
        rep.reports,
        spec.threads,
    );
    let shape = rep.res_total < rep.heur_total;
    Experiment {
        id: "E6c",
        claim: "suffix taint evidence beats fault-shape heuristics across a generated population",
        table,
        shape_holds: shape,
    }
}

/// E7c — hardware-filter precision/recall distributions over a
/// generated population (classes whose genuine dumps the engine fully
/// explains; 4 reports per program so both corruption flavors appear).
pub fn e7c_hardware_corpus() -> Experiment {
    use res_workloads::GenClass;
    let spec = corpus_spec(
        vec![
            GenClass::DataRace,
            GenClass::DivByZero,
            GenClass::LocalOverflow,
            GenClass::UseAfterFree,
        ],
        4,
    );
    let rec = corpus_recorder("E7c");
    let rep = hardware_scale(&spec, &ResConfig::default(), &corpus_store_dir(), &rec);
    rec.finish();
    let table = format!(
        "metric     | min/med/max (per shard)              | pooled\n\
         -----------+--------------------------------------+-------\n\
         precision  | {:>36} | {:>5.1}%\n\
         recall     | {:>36} | {:>5.1}%\n\
         population: {} generated programs, {} reports (half hw-corrupted), {} threads\n\
         genuine software reports misflagged: {}\n",
        rep.precision.pct(),
        rep.precision_total * 100.0,
        rep.recall.pct(),
        rep.recall_total * 100.0,
        rep.programs,
        rep.reports,
        spec.threads,
        rep.false_positives,
    );
    let shape = rep.false_positives == 0 && rep.recall_total > 0.5;
    Experiment {
        id: "E7c",
        claim: "the hardware filter keeps zero false positives at population scale",
        table,
        shape_holds: shape,
    }
}

/// One pass of the SRV daemon-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePassRow {
    /// `cold` (empty hot set and empty store files) or `warm`.
    pub pass: String,
    /// Reports triaged.
    pub reports: u64,
    /// Batch wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Reports per second.
    pub rps: f64,
    /// Hot-store hits accumulated by the end of the pass.
    pub hot_hits: u64,
    /// Hot-store misses accumulated by the end of the pass.
    pub hot_misses: u64,
    /// Hot-store evictions accumulated by the end of the pass.
    pub hot_evictions: u64,
    /// Every response was byte-identical to the sequential direct
    /// library run on the same report.
    pub identical: bool,
}

mvm_json::json_struct!(ServePassRow {
    pass,
    reports,
    wall_ms,
    rps,
    hot_hits,
    hot_misses,
    hot_evictions,
    identical
});

/// The `BENCH_serve_throughput.json` artifact payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeThroughputArtifact {
    /// Artifact id (`serve_throughput`).
    pub experiment: String,
    /// Corpus description.
    pub workload: String,
    /// Daemon worker threads.
    pub daemon_workers: u64,
    /// Concurrent client connections per pass.
    pub clients: u64,
    /// Hot-store capacity (programs kept warm).
    pub hot_cap: u64,
    /// Cold then warm pass.
    pub passes: Vec<ServePassRow>,
    /// `store.compact.auto` events observed in the daemon journal.
    pub compactions: u64,
    /// The acceptance shape (see [`srv_serve_throughput`]).
    pub shape_holds: bool,
}

mvm_json::json_struct!(ServeThroughputArtifact {
    experiment,
    workload,
    daemon_workers,
    clients,
    hot_cap,
    passes,
    compactions,
    shape_holds
});

/// The byte-identity currency for a daemon answer: verdict, deadlock
/// flag, bucket key, and the full rendering of every suffix. Kernel
/// stats are excluded — the solver's cache-provenance counters
/// legitimately differ between cold and warm stores.
fn srv_identity(resp: &res_triage::TriageResponse) -> String {
    format!(
        "{:?}|{}|{}|{:?}",
        resp.verdict, resp.deadlock, resp.bucket_key, resp.suffixes
    )
}

/// SRV — batch throughput through the `res-serve` daemon: a ≥50-dump
/// corpus over a handful of programs is submitted concurrently twice
/// (cold, then warm hot-store) and compared byte-for-byte against
/// sequential direct library runs.
///
/// The daemon runs with a hot-store capacity *below* the number of
/// distinct programs and an aggressive age-based compaction policy, so
/// the pass exercises the whole store lifecycle: open → absorb → evict
/// → commit → auto-compact → re-open. The shape holds when every
/// response (both passes) is byte-identical to its sequential golden,
/// the warm pass serves a nonzero hot hit rate, and at least one
/// automatic compaction fired.
pub fn srv_serve_throughput() -> Experiment {
    use res_serve::{serve, ServeConfig, TriageClient};
    use res_store::CompactionPolicy;
    use res_triage::TriageRequest;

    let spec = CorpusSpec {
        kinds: vec![
            BugKind::DivByZero,
            BugKind::UseAfterFree,
            BugKind::DoubleFree,
            BugKind::SemanticAssert,
        ],
        per_kind: 13,
        ..CorpusSpec::default()
    };
    let corpus = generate_corpus(&spec);
    assert!(corpus.len() >= 50, "corpus too small: {}", corpus.len());
    let programs = spec.kinds.len();

    // Sequential ground truth: the plain library, no daemon, no store.
    let base = ResConfig::default();
    let golden: Vec<String> = corpus
        .iter()
        .map(|r| {
            let req = TriageRequest::new(r.program.clone(), r.dump.clone());
            srv_identity(&res_triage::triage(&req, &base))
        })
        .collect();

    let scratch = std::env::temp_dir().join(format!("res-srv-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");
    let bench_out = std::env::var_os("RES_BENCH_OUT").map(std::path::PathBuf::from);
    // The journal survives in RES_BENCH_OUT (CI greps it for the
    // serve.* gauges and the store.compact.auto marks).
    let journal = bench_out
        .as_deref()
        .unwrap_or(&scratch)
        .join("BENCH_serve_journal.jsonl");

    const DAEMON_WORKERS: usize = 4;
    const CLIENTS: usize = 4;
    const HOT_CAP: usize = 2; // below `programs`: force eviction churn
    let mut handle = serve(ServeConfig {
        workers: DAEMON_WORKERS,
        hot_cap: HOT_CAP,
        store_dir: Some(scratch.join("hot")),
        // Compact whenever a commit leaves any stale stats record —
        // i.e. on every second commit of a store file — so the short
        // two-pass run still exercises the auto-compaction path.
        policy: CompactionPolicy {
            max_stale_stats: Some(0),
            ..CompactionPolicy::default()
        },
        trace: Some(journal.clone()),
        ..ServeConfig::default()
    })
    .expect("boot daemon");
    let addr = handle.addr().to_string();

    // One timed concurrent batch: the corpus sharded across CLIENTS
    // connections, each submitting its shard in order.
    let run_pass = |pass: &str| -> ServePassRow {
        let t0 = Instant::now();
        let answers: Vec<Vec<(usize, String)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let addr = &addr;
                    let corpus = &corpus;
                    s.spawn(move || {
                        let mut client = TriageClient::connect(addr).expect("connect");
                        corpus
                            .iter()
                            .enumerate()
                            .skip(c)
                            .step_by(CLIENTS)
                            .map(|(i, r)| {
                                let req = TriageRequest::new(r.program.clone(), r.dump.clone());
                                let resp = client.triage(req).expect("io").expect("admitted");
                                (i, srv_identity(&resp))
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let identical = answers.iter().flatten().all(|(i, got)| got == &golden[*i]);
        let stats = handle.stats();
        ServePassRow {
            pass: pass.to_string(),
            reports: corpus.len() as u64,
            wall_ms,
            rps: corpus.len() as f64 / (wall_ms / 1000.0).max(1e-9),
            hot_hits: stats.hot_hits,
            hot_misses: stats.hot_misses,
            hot_evictions: stats.hot_evictions,
            identical,
        }
    };
    let cold = run_pass("cold");
    let warm = run_pass("warm");
    handle.stop(); // flushes the hot stores and the journal

    let compactions = res_obs::read_journal(&journal)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.kind.name() == Some("store.compact.auto"))
                .count() as u64
        })
        .unwrap_or(0);
    let warm_hits = warm.hot_hits - cold.hot_hits;
    let shape_holds = cold.identical && warm.identical && warm_hits > 0 && compactions > 0;

    let mut table = String::from(
        "pass | reports | wall     | reports/s | hot hits/misses/evictions | identical\n\
         -----+---------+----------+-----------+---------------------------+----------\n",
    );
    for row in [&cold, &warm] {
        let _ = writeln!(
            table,
            "{:<4} | {:>7} | {:>6.1}ms | {:>9.1} | {:>25} | {}",
            row.pass,
            row.reports,
            row.wall_ms,
            row.rps,
            format!("{}/{}/{}", row.hot_hits, row.hot_misses, row.hot_evictions),
            if row.identical { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        table,
        "auto-compactions: {compactions}, warm-pass hot hits: {warm_hits}"
    );

    if let Some(dir) = &bench_out {
        let artifact = ServeThroughputArtifact {
            experiment: "serve_throughput".to_string(),
            workload: format!(
                "{} reports over {programs} programs ({} per kind), default budgets",
                corpus.len(),
                spec.per_kind
            ),
            daemon_workers: DAEMON_WORKERS as u64,
            clients: CLIENTS as u64,
            hot_cap: HOT_CAP as u64,
            passes: vec![cold, warm],
            compactions,
            shape_holds,
        };
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("BENCH_serve_throughput.json");
        if let Err(err) = std::fs::write(&path, mvm_json::to_string_pretty(&artifact)) {
            eprintln!("cannot write {}: {err}", path.display());
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    Experiment {
        id: "SRV",
        claim: "the triage daemon serves concurrent batches byte-identical to \
                sequential library runs, with a warm hot store and automatic \
                store compaction",
        table,
        shape_holds,
    }
}

/// Runs every experiment in order.
pub fn run_all() -> Vec<Experiment> {
    vec![
        e1_hotos_eval(),
        e2_figure1(),
        e3_length_sweep(),
        e4_breadcrumbs(),
        e5_triage(),
        e5c_triage_corpus(),
        e6_exploitability(),
        e6c_exploitability_corpus(),
        e7_hardware(),
        e7c_hardware_corpus(),
        e8_recording_overhead(),
        e9_suffix_budget(),
        e10_hard_constructs(),
        e11_replay_determinism(),
        e12_deadline(),
        e13_store_warm(),
        a1_overapprox_ablation(),
        a2_dump_vs_minidump(),
        a3_solver_budget(),
    ]
}
