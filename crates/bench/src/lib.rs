//! # Experiment implementations
//!
//! One function per experiment of `DESIGN.md` §3. Each returns a
//! human-readable table (what the `harness` binary prints and
//! `EXPERIMENTS.md` records) plus the key metrics the tests assert on.
//! The Criterion benches in `benches/` measure the latency of the same
//! operations.

pub mod experiments;

pub use experiments::*;
