//! # Experiment implementations
//!
//! One function per experiment of `DESIGN.md` §3. Each returns a
//! human-readable table (what the `harness` binary prints and
//! `EXPERIMENTS.md` records) plus the key metrics the tests assert on.
//! The micro-benches in `benches/` (run on the in-repo [`micro`] runner)
//! measure the latency of the same operations.

pub mod experiments;
pub mod micro;

pub use experiments::*;
