//! The experiment harness: regenerates every table of the evaluation.
//!
//! ```text
//! cargo run --release -p res-bench --bin harness            # all
//! cargo run --release -p res-bench --bin harness -- e3 e5   # a subset
//! ```
//!
//! Independent experiments are sharded across worker threads
//! (`RES_HARNESS_THREADS`, default `auto_workers()`); output order and
//! every table stay identical at any thread count. Two groups opt out
//! of the fan-out and run sequentially afterwards: the timing-sensitive
//! experiments (E3, E8 — their shapes compare wall-clock measurements
//! that a loaded machine would skew) and the corpus-scale experiments
//! (E5c, E6c, E7c — they parallelize internally over generated programs
//! and share one solver-store directory).
//!
//! With `RES_TRACE=<dir>` set, the harness writes metrics artifacts
//! into `<dir>`: one `<id>.metrics.json` per experiment (id, claim,
//! shape verdict, wall time) plus a `harness.jsonl` span journal —
//! the raw numbers behind the EXPERIMENTS.md tables. The corpus-scale
//! experiments additionally journal per-program counters to their own
//! `<id>.journal.jsonl`. (Note the engine and tests interpret
//! `RES_TRACE` as a journal *file* path; the harness runs many
//! experiments, so here it names a directory.)

use mvm_json::json_struct;
use res_bench::experiments as ex;
use res_bench::Experiment;
use res_core::{auto_workers, parallel_map};
use res_obs::Recorder;

const ALL_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e5c", "e6", "e6c", "e7", "e7c", "e8", "e9", "e10", "e11", "e12",
    "e13", "a1", "a2", "a3",
];

fn run(id: &str) -> Option<Experiment> {
    Some(match id {
        "e1" => ex::e1_hotos_eval(),
        "e2" => ex::e2_figure1(),
        "e3" => ex::e3_length_sweep(),
        // Not in ALL_IDS: E3's table already embeds the yield sweep;
        // `e3y` exists so CI can run just that extract cheaply (and
        // emit the BENCH artifact via RES_BENCH_OUT).
        "e3y" => ex::e3y_speculative_yield(),
        "e4" => ex::e4_breadcrumbs(),
        "e5" => ex::e5_triage(),
        "e5c" => ex::e5c_triage_corpus(),
        "e6" => ex::e6_exploitability(),
        "e6c" => ex::e6c_exploitability_corpus(),
        "e7" => ex::e7_hardware(),
        "e7c" => ex::e7c_hardware_corpus(),
        "e8" => ex::e8_recording_overhead(),
        "e9" => ex::e9_suffix_budget(),
        "e10" => ex::e10_hard_constructs(),
        "e11" => ex::e11_replay_determinism(),
        "e12" => ex::e12_deadline(),
        "e13" => ex::e13_store_warm(),
        // Not in ALL_IDS: CI runs the daemon-throughput extract on its
        // own (it boots a server, shards clients, and emits the
        // BENCH_serve_throughput.json artifact via RES_BENCH_OUT).
        "srv" => ex::srv_serve_throughput(),
        "a1" => ex::a1_overapprox_ablation(),
        "a2" => ex::a2_dump_vs_minidump(),
        "a3" => ex::a3_solver_budget(),
        _ => return None,
    })
}

/// Experiments that must not share the machine with other experiments
/// while they run: timing-shape experiments and the internally-parallel
/// corpus-scale trio.
fn sequential_only(id: &str) -> bool {
    matches!(id, "e3" | "e3y" | "e8" | "e5c" | "e6c" | "e7c" | "srv")
}

fn print_experiment(e: &Experiment) {
    println!("================================================================");
    println!("{} — {}", e.id, e.claim);
    println!("================================================================");
    println!("{}", e.table);
    println!(
        "shape check: {}",
        if e.shape_holds {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        }
    );
    println!();
}

/// The per-experiment metrics artifact (`<id>.metrics.json`).
#[derive(Debug, Clone, PartialEq)]
struct Metrics {
    id: String,
    claim: String,
    shape_holds: bool,
    wall_ms: u64,
}

json_struct!(Metrics {
    id,
    claim,
    shape_holds,
    wall_ms
});

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = std::env::var_os("RES_TRACE").map(std::path::PathBuf::from);
    let recorder = match &trace_dir {
        Some(dir) => Recorder::journal(dir.join("harness.jsonl")),
        None => Recorder::disabled(),
    };
    let threads: usize = std::env::var("RES_HARNESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(auto_workers)
        .max(1);
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|a| a.to_lowercase()).collect()
    };

    // One closure runs an experiment end to end (span, counters,
    // metrics artifact); it is safe to call from worker threads — the
    // recorder is thread-safe and each artifact file is experiment-own.
    let run_one = |id: &str| -> Option<Experiment> {
        let started = std::time::Instant::now();
        let span = recorder.span(id);
        let e = run(id)?;
        drop(span);
        recorder.counter("experiments", 1);
        if e.shape_holds {
            recorder.counter("shapes_hold", 1);
        }
        if let Some(dir) = &trace_dir {
            let artifact = Metrics {
                id: e.id.to_string(),
                claim: e.claim.to_string(),
                shape_holds: e.shape_holds,
                wall_ms: started.elapsed().as_millis() as u64,
            };
            let path = dir.join(format!("{}.metrics.json", e.id));
            if let Err(err) = std::fs::write(&path, mvm_json::to_string_pretty(&artifact)) {
                eprintln!("cannot write {}: {err}", path.display());
            }
        }
        Some(e)
    };

    // Phase 1: fan the independent experiments out across threads
    // (positional results keep the output order request-stable).
    let mut slots: Vec<Option<Experiment>> = parallel_map(&ids, threads, |_, id| {
        if sequential_only(id) {
            None
        } else {
            run_one(id)
        }
    });
    // Phase 2: the sequential-only experiments, one at a time on an
    // otherwise idle process.
    for (i, id) in ids.iter().enumerate() {
        if sequential_only(id) {
            slots[i] = run_one(id);
        }
    }
    recorder.finish();

    let mut results: Vec<Experiment> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(e) => results.push(e),
            None => eprintln!(
                "unknown experiment id {:?} (use e1..e13, e3y, e5c/e6c/e7c, a1..a3, all)",
                ids[i]
            ),
        }
    }
    for e in &results {
        print_experiment(e);
    }
    let holds = results.iter().filter(|e| e.shape_holds).count();
    println!(
        "summary: {}/{} experiment shapes hold",
        holds,
        results.len()
    );
    if holds != results.len() {
        std::process::exit(1);
    }
}
