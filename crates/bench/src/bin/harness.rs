//! The experiment harness: regenerates every table of the evaluation.
//!
//! ```text
//! cargo run --release -p res-bench --bin harness            # all
//! cargo run --release -p res-bench --bin harness -- e3 e5   # a subset
//! ```
//!
//! With `RES_TRACE=<dir>` set, the harness writes metrics artifacts
//! into `<dir>`: one `<id>.metrics.json` per experiment (id, claim,
//! shape verdict, wall time) plus a `harness.jsonl` span journal —
//! the raw numbers behind the EXPERIMENTS.md tables. (Note the engine
//! and tests interpret `RES_TRACE` as a journal *file* path; the
//! harness runs many experiments, so here it names a directory.)

use mvm_json::json_struct;
use res_bench::experiments as ex;
use res_bench::Experiment;
use res_obs::Recorder;

const ALL_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "a1", "a2",
    "a3",
];

fn run(id: &str) -> Option<Experiment> {
    Some(match id {
        "e1" => ex::e1_hotos_eval(),
        "e2" => ex::e2_figure1(),
        "e3" => ex::e3_length_sweep(),
        "e4" => ex::e4_breadcrumbs(),
        "e5" => ex::e5_triage(),
        "e6" => ex::e6_exploitability(),
        "e7" => ex::e7_hardware(),
        "e8" => ex::e8_recording_overhead(),
        "e9" => ex::e9_suffix_budget(),
        "e10" => ex::e10_hard_constructs(),
        "e11" => ex::e11_replay_determinism(),
        "e12" => ex::e12_deadline(),
        "e13" => ex::e13_store_warm(),
        "a1" => ex::a1_overapprox_ablation(),
        "a2" => ex::a2_dump_vs_minidump(),
        "a3" => ex::a3_solver_budget(),
        _ => return None,
    })
}

fn print_experiment(e: &Experiment) {
    println!("================================================================");
    println!("{} — {}", e.id, e.claim);
    println!("================================================================");
    println!("{}", e.table);
    println!(
        "shape check: {}",
        if e.shape_holds {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        }
    );
    println!();
}

/// The per-experiment metrics artifact (`<id>.metrics.json`).
#[derive(Debug, Clone, PartialEq)]
struct Metrics {
    id: String,
    claim: String,
    shape_holds: bool,
    wall_ms: u64,
}

json_struct!(Metrics {
    id,
    claim,
    shape_holds,
    wall_ms
});

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = std::env::var_os("RES_TRACE").map(std::path::PathBuf::from);
    let recorder = match &trace_dir {
        Some(dir) => Recorder::journal(dir.join("harness.jsonl")),
        None => Recorder::disabled(),
    };
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|a| a.to_lowercase()).collect()
    };
    let mut results: Vec<Experiment> = Vec::new();
    for id in &ids {
        let started = std::time::Instant::now();
        let span = recorder.span(id);
        let Some(e) = run(id) else {
            drop(span);
            eprintln!("unknown experiment id {id:?} (use e1..e13, a1..a3, all)");
            continue;
        };
        drop(span);
        recorder.counter("experiments", 1);
        if e.shape_holds {
            recorder.counter("shapes_hold", 1);
        }
        if let Some(dir) = &trace_dir {
            let artifact = Metrics {
                id: e.id.to_string(),
                claim: e.claim.to_string(),
                shape_holds: e.shape_holds,
                wall_ms: started.elapsed().as_millis() as u64,
            };
            let path = dir.join(format!("{}.metrics.json", e.id));
            if let Err(err) = std::fs::write(&path, mvm_json::to_string_pretty(&artifact)) {
                eprintln!("cannot write {}: {err}", path.display());
            }
        }
        results.push(e);
    }
    recorder.finish();
    for e in &results {
        print_experiment(e);
    }
    let holds = results.iter().filter(|e| e.shape_holds).count();
    println!(
        "summary: {}/{} experiment shapes hold",
        holds,
        results.len()
    );
    if holds != results.len() {
        std::process::exit(1);
    }
}
