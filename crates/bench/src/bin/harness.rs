//! The experiment harness: regenerates every table of the evaluation.
//!
//! ```text
//! cargo run --release -p res-bench --bin harness            # all
//! cargo run --release -p res-bench --bin harness -- e3 e5   # a subset
//! ```

use res_bench::experiments as ex;
use res_bench::Experiment;

fn run(id: &str) -> Option<Experiment> {
    Some(match id {
        "e1" => ex::e1_hotos_eval(),
        "e2" => ex::e2_figure1(),
        "e3" => ex::e3_length_sweep(),
        "e4" => ex::e4_breadcrumbs(),
        "e5" => ex::e5_triage(),
        "e6" => ex::e6_exploitability(),
        "e7" => ex::e7_hardware(),
        "e8" => ex::e8_recording_overhead(),
        "e9" => ex::e9_suffix_budget(),
        "e10" => ex::e10_hard_constructs(),
        "e11" => ex::e11_replay_determinism(),
        "e12" => ex::e12_deadline(),
        "e13" => ex::e13_store_warm(),
        "a1" => ex::a1_overapprox_ablation(),
        "a2" => ex::a2_dump_vs_minidump(),
        "a3" => ex::a3_solver_budget(),
        _ => return None,
    })
}

fn print_experiment(e: &Experiment) {
    println!("================================================================");
    println!("{} — {}", e.id, e.claim);
    println!("================================================================");
    println!("{}", e.table);
    println!(
        "shape check: {}",
        if e.shape_holds {
            "HOLDS"
        } else {
            "DOES NOT HOLD"
        }
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results: Vec<Experiment> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ex::run_all()
    } else {
        args.iter()
            .filter_map(|a| {
                let r = run(&a.to_lowercase());
                if r.is_none() {
                    eprintln!("unknown experiment id {a:?} (use e1..e13, a1..a3, all)");
                }
                r
            })
            .collect()
    };
    for e in &results {
        print_experiment(e);
    }
    let holds = results.iter().filter(|e| e.shape_holds).count();
    println!(
        "summary: {}/{} experiment shapes hold",
        holds,
        results.len()
    );
    if holds != results.len() {
        std::process::exit(1);
    }
}
