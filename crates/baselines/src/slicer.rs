//! Backward static slicing (PSE-like baseline).
//!
//! PSE [Manevich et al., FSE'04] explains failures by *static* backward
//! analysis from the failure point. Static analysis cannot consult the
//! coredump's values, so it must keep **every** path and location that
//! may influence the failure — sound but imprecise (paper §2.2: "These
//! techniques are typically imprecise, as they do not use the rich
//! source of information present in the coredump. They also work only on
//! sequential programs").
//!
//! The baseline computes a backward data/control slice over registers
//! and statically named globals and reports its size plus the number of
//! distinct backward CFG paths — the quantities RES's coredump-driven
//! pruning collapses.

use std::collections::{BTreeSet, HashSet, VecDeque};

use mvm_isa::{
    cfg::CallGraph,
    BlockId,
    FuncId,
    Inst,
    Loc,
    Operand,
    Program,
    Reg, //
};

/// The result of a static backward slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceResult {
    /// Locations in the slice.
    pub locations: BTreeSet<Loc>,
    /// Distinct backward paths enumerated (capped).
    pub paths: u64,
    /// `true` if the path count hit the cap (the explosion RES avoids).
    pub path_cap_hit: bool,
}

impl SliceResult {
    /// Slice size in instructions.
    pub fn size(&self) -> usize {
        self.locations.len()
    }
}

/// Computes a backward static slice from `fault` for `depth` blocks.
///
/// The relevance criterion starts from the registers used by the
/// faulting instruction; any instruction defining a relevant register —
/// or storing to any global (static analysis cannot resolve which) — is
/// added and its uses become relevant. Path counting walks the
/// predecessor relation without any feasibility pruning, which is
/// exactly what makes it explode.
pub fn backward_slice(program: &Program, fault: Loc, depth: usize, path_cap: u64) -> SliceResult {
    let callgraph = CallGraph::build(program);
    let block = program.func(fault.func).block(fault.block);
    let mut relevant: HashSet<Reg> = HashSet::new();
    if (fault.inst as usize) < block.insts.len() {
        relevant.extend(block.insts[fault.inst as usize].used_regs());
    } else {
        relevant.extend(block.terminator.used_regs());
    }

    let mut locations = BTreeSet::new();
    // Walk blocks backward breadth-first up to `depth`, accumulating
    // defining instructions; since values are unknown statically, stores
    // conservatively stay relevant.
    let mut queue: VecDeque<(FuncId, BlockId, u32, usize)> = VecDeque::new();
    queue.push_back((fault.func, fault.block, fault.inst, 0));
    let mut seen: HashSet<(FuncId, BlockId)> = HashSet::new();
    while let Some((f, b, upto, d)) = queue.pop_front() {
        let blk = program.func(f).block(b);
        for i in (0..(upto as usize).min(blk.insts.len())).rev() {
            let inst = &blk.insts[i];
            let defines_relevant = inst.def_reg().is_some_and(|r| relevant.contains(&r));
            let is_store = matches!(inst, Inst::Store { .. });
            if defines_relevant || is_store {
                locations.insert(Loc {
                    func: f,
                    block: b,
                    inst: i as u32,
                });
                for u in inst.used_regs() {
                    relevant.insert(u);
                }
                if let Inst::Store { src, addr, .. } = inst {
                    if let Operand::Reg(r) = src {
                        relevant.insert(*r);
                    }
                    if let Operand::Reg(r) = addr {
                        relevant.insert(*r);
                    }
                }
            }
        }
        if d >= depth {
            continue;
        }
        let cfg = callgraph.cfg(f);
        for &p in cfg.preds(b) {
            if seen.insert((f, p)) {
                let len = program.func(f).block(p).insts.len() as u32;
                queue.push_back((f, p, len, d + 1));
            }
        }
        // Interprocedural: at a function entry, all call sites join the
        // slice frontier.
        if b == BlockId(0) {
            for site in callgraph.callers_of(f) {
                if seen.insert((site.caller, site.block)) {
                    let len = program.func(site.caller).block(site.block).insts.len() as u32;
                    queue.push_back((site.caller, site.block, len, d + 1));
                }
            }
        }
    }

    // Path counting: pure backward CFG enumeration, no pruning.
    let mut paths = 0u64;
    let mut cap_hit = false;
    let mut stack: Vec<(FuncId, BlockId, usize)> = vec![(fault.func, fault.block, 0)];
    while let Some((f, b, d)) = stack.pop() {
        if paths >= path_cap {
            cap_hit = true;
            break;
        }
        let cfg = callgraph.cfg(f);
        let preds = cfg.preds(b);
        if d >= depth || preds.is_empty() {
            paths += 1;
            continue;
        }
        for &p in preds {
            stack.push((f, p, d + 1));
        }
    }
    SliceResult {
        locations,
        paths,
        path_cap_hit: cap_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{build, BugKind, WorkloadParams};

    #[test]
    fn slice_contains_defining_instructions() {
        let p = build(BugKind::DivByZero, WorkloadParams::default());
        let main = p.func_by_name("main").unwrap();
        // The fault is the `divu` in block `divide`.
        let divide = p.func(main).block_by_label("divide").unwrap();
        let fault = Loc {
            func: main,
            block: divide,
            inst: 1,
        };
        let r = backward_slice(&p, fault, 6, 10_000);
        assert!(r.size() >= 3, "slice too small: {:?}", r.locations);
    }

    #[test]
    fn paths_explode_on_loops_without_pruning() {
        let p = build(BugKind::DivByZero, WorkloadParams::default());
        let main = p.func_by_name("main").unwrap();
        let divide = p.func(main).block_by_label("divide").unwrap();
        let fault = Loc {
            func: main,
            block: divide,
            inst: 1,
        };
        let shallow = backward_slice(&p, fault, 3, 1_000_000);
        let deep = backward_slice(&p, fault, 18, 1_000_000);
        assert!(
            deep.paths > shallow.paths,
            "{} vs {}",
            deep.paths,
            shallow.paths
        );
    }

    #[test]
    fn path_cap_reported() {
        let p = build(BugKind::DataRace, WorkloadParams::default());
        let main = p.func_by_name("main").unwrap();
        let check = p.func(main).block_by_label("check").unwrap();
        let fault = Loc {
            func: main,
            block: check,
            inst: 3,
        };
        let r = backward_slice(&p, fault, 400, 20);
        assert!(r.path_cap_hit);
        assert_eq!(r.paths, 20);
    }
}
