//! WER-style call-stack bucketing (paper §3.1).
//!
//! "The state of the art in triaging bug reports is Windows Error
//! Reporting. [...] WER can incorrectly bucket up to 37% of the bug
//! reports." The baseline buckets failure reports by their stack
//! signature (coarse signal + top frames) and measures how often that
//! disagrees with the ground-truth bug labels — both failure modes:
//! one bug split over many buckets (different manifestation stacks) and
//! several bugs merged into one bucket (colliding stacks).

use std::collections::HashMap;

use mvm_core::StackSignature;
use res_workloads::FailureReport;

/// A bucketing outcome over a labeled corpus.
#[derive(Debug, Clone)]
pub struct BucketingReport {
    /// Bucket key → indexes into the corpus.
    pub buckets: HashMap<String, Vec<usize>>,
    /// Number of distinct ground-truth bugs in the corpus.
    pub distinct_bugs: usize,
    /// Fraction of reports not in their bug's majority bucket
    /// (mis-bucketed), in `[0, 1]`.
    pub misbucket_rate: f64,
}

impl BucketingReport {
    /// Number of buckets produced.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

/// The WER bucket key for a stack signature.
pub fn signature_key(sig: &StackSignature) -> String {
    let frames: Vec<String> = sig.frames.iter().map(|l| l.to_string()).collect();
    format!("{}|{}", sig.signal, frames.join(";"))
}

/// Buckets a corpus by WER-style stack signature with `depth` frames.
pub fn bucket_by_stack(corpus: &[FailureReport], depth: usize) -> BucketingReport {
    let keys: Vec<String> = corpus
        .iter()
        .map(|r| signature_key(&r.dump.stack_signature(depth)))
        .collect();
    build_report(corpus, keys)
}

fn kind_labels(corpus: &[FailureReport]) -> Vec<String> {
    corpus.iter().map(|r| format!("{:?}", r.kind)).collect()
}

/// Builds a report from arbitrary bucket keys (shared with the RES
/// bucketing in `res-triage`).
pub fn build_report(corpus: &[FailureReport], keys: Vec<String>) -> BucketingReport {
    build_report_labeled(&kind_labels(corpus), keys)
}

/// [`build_report`] over arbitrary ground-truth labels — one label
/// string per report, reports with equal labels are the same bug. The
/// generated corpora use this directly (their bug identity is a
/// program-fingerprint + class pair, not a [`res_workloads::BugKind`]).
pub fn build_report_labeled(labels: &[String], keys: Vec<String>) -> BucketingReport {
    assert_eq!(labels.len(), keys.len(), "one key per labeled report");
    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        buckets.entry(k.clone()).or_default().push(i);
    }
    let distinct: std::collections::HashSet<&String> = labels.iter().collect();
    let rate = misbucket_rate_labeled(labels, &keys);
    BucketingReport {
        buckets,
        distinct_bugs: distinct.len(),
        misbucket_rate: rate,
    }
}

/// The mis-bucketing metric: ideal triaging puts all reports of one bug
/// in one bucket containing only that bug. A report counts as correctly
/// bucketed when it is in its bug's *plurality* bucket **and** its bug
/// is the plurality label of that bucket; everything else (splits and
/// merges) is mis-bucketed.
pub fn misbucket_rate(corpus: &[FailureReport], keys: &[String]) -> f64 {
    misbucket_rate_labeled(&kind_labels(corpus), keys)
}

/// [`misbucket_rate`] over arbitrary ground-truth label strings.
pub fn misbucket_rate_labeled(labels: &[String], keys: &[String]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    assert_eq!(labels.len(), keys.len(), "one key per labeled report");
    // Per bug: its plurality bucket.
    let mut bug_bucket_counts: HashMap<(&str, &str), usize> = HashMap::new();
    for (l, k) in labels.iter().zip(keys) {
        *bug_bucket_counts
            .entry((l.as_str(), k.as_str()))
            .or_default() += 1;
    }
    let mut bug_home: HashMap<&str, &str> = HashMap::new();
    for ((bug, bucket), n) in &bug_bucket_counts {
        let cur = bug_home.get(bug);
        let cur_n = cur.map(|b| bug_bucket_counts[&(*bug, *b)]).unwrap_or(0);
        if *n > cur_n {
            bug_home.insert(bug, bucket);
        }
    }
    // Per bucket: its plurality bug.
    let mut bucket_bug_counts: HashMap<(&str, &str), usize> = HashMap::new();
    for (l, k) in labels.iter().zip(keys) {
        *bucket_bug_counts
            .entry((k.as_str(), l.as_str()))
            .or_default() += 1;
    }
    let mut bucket_owner: HashMap<&str, &str> = HashMap::new();
    for ((bucket, bug), n) in &bucket_bug_counts {
        let cur = bucket_owner.get(bucket);
        let cur_n = cur.map(|b| bucket_bug_counts[&(*bucket, *b)]).unwrap_or(0);
        if *n > cur_n {
            bucket_owner.insert(bucket, bug);
        }
    }
    let mis = labels
        .iter()
        .zip(keys)
        .filter(|(l, k)| {
            bug_home.get(l.as_str()).copied() != Some(k.as_str())
                || bucket_owner.get(k.as_str()).copied() != Some(l.as_str())
        })
        .count();
    mis as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{generate_corpus, BugKind, CorpusSpec, WorkloadParams};

    fn corpus() -> Vec<FailureReport> {
        generate_corpus(&CorpusSpec {
            kinds: vec![
                BugKind::DivByZero,
                BugKind::UseAfterFree,
                BugKind::RaceNullDeref,
                BugKind::UafSameStack,
            ],
            per_kind: 4,
            params: WorkloadParams::default(),
            ..CorpusSpec::default()
        })
    }

    #[test]
    fn distinct_deterministic_bugs_bucket_cleanly() {
        let c: Vec<FailureReport> = corpus()
            .into_iter()
            .filter(|r| matches!(r.kind, BugKind::DivByZero | BugKind::UseAfterFree))
            .collect();
        let rep = bucket_by_stack(&c, 2);
        assert_eq!(rep.misbucket_rate, 0.0, "{:?}", rep.buckets.keys());
    }

    #[test]
    fn stack_bucketing_misbuckets_engineered_corpus() {
        let c = corpus();
        let rep = bucket_by_stack(&c, 1);
        // RaceNullDeref and UafSameStack collide at depth 1: merges.
        assert!(
            rep.misbucket_rate > 0.0,
            "expected mis-bucketing, got {:?}",
            rep.buckets.keys()
        );
    }

    #[test]
    fn deeper_stacks_split_single_bugs() {
        let c: Vec<FailureReport> = corpus()
            .into_iter()
            .filter(|r| r.kind == BugKind::RaceNullDeref)
            .collect();
        if c.len() < 2 {
            return; // Schedule luck; corpus test covers generation.
        }
        let rep = bucket_by_stack(&c, 2);
        // One bug; if its manifestations produced different stacks, the
        // bucket count exceeds the bug count.
        assert!(rep.bucket_count() >= 1);
    }

    #[test]
    fn empty_corpus_rate_is_zero() {
        assert_eq!(misbucket_rate(&[], &[]), 0.0);
    }
}
