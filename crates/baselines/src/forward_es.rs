//! Forward execution synthesis (ESD-like baseline).
//!
//! Execution synthesis [Zamfir & Candea, EuroSys'10] searches *forward*
//! from the program's start state for an execution that reproduces the
//! failure, guided by the minidump (call stack + fault). Our baseline
//! reproduces its cost structure: every candidate must execute the
//! entire prefix, so the work is `O(candidates × execution length)` —
//! and the candidate space (schedules × inputs) grows with the number of
//! scheduling and input choice points, which itself grows with length.
//! RES's cost is independent of both (experiment E3).
//!
//! The searcher is driven by the same exploration kernel as the RES
//! engine (`res_core::kernel`): candidates form a linear chain of
//! nodes walked by a pluggable [`res_core::kernel::Frontier`], resource limits are one
//! shared [`Budget`], the minidump-match check goes through the
//! [`CompatCheck`] seam backed by a memoizing [`SolverSession`], and
//! costs come back as [`KernelStats`]. E3 therefore compares the two
//! *algorithms* under identical accounting, not two bespoke harnesses.

use std::sync::atomic::{AtomicU64, Ordering};

use mvm_core::Minidump;
use mvm_isa::{Loc, Program};
use mvm_machine::{
    InputSource,
    Machine,
    MachineConfig,
    Outcome,
    SchedPolicy, //
};
use mvm_symbolic::{Expr, ExprRef, SolverConfig, SolverSession};
use res_core::kernel::{
    explore, Budget, CompatCheck, CompatVerdict, CutReason, ExploreConfig, Finalize, FrontierKind,
    HypothesisGen, KernelStats, NodeScore, Recorder, SessionCompat, SpeculativeYield,
    StateTransform,
};

/// Forward-search configuration, expressed in the kernel's shared
/// vocabulary: `budget.max_nodes` is the candidate cap and
/// `budget.hyp_max_steps` the per-candidate instruction budget.
#[derive(Debug, Clone)]
pub struct ForwardConfig {
    /// Resource limits. `max_nodes` bounds candidate executions,
    /// `hyp_max_steps` bounds each candidate's instruction count, and
    /// the solver/deadline limits apply as in the RES engine.
    pub budget: Budget,
    /// Exploration order over the candidate chain. The chain is linear,
    /// so every order visits the same candidates; the knob exists for
    /// uniformity with [`res_core::ResConfig`].
    pub frontier: FrontierKind,
    /// Solver tuning for the compatibility check.
    pub solver: SolverConfig,
    /// Base seed.
    pub seed: u64,
    /// Parallel scan workers, mirroring `ResConfig::workers` so E3
    /// compares the algorithms under identical parallel accounting.
    /// Worker `w` of `N` scans candidate indices `w, w + N, w + 2N, …`;
    /// the reported witness is always the *lowest* matching index —
    /// exactly what the sequential scan finds — regardless of timing.
    pub workers: usize,
}

impl Default for ForwardConfig {
    fn default() -> Self {
        ForwardConfig {
            budget: Budget {
                max_nodes: 256,
                hyp_max_steps: 5_000_000,
                max_solver_assignments: None,
                deadline: None,
            },
            frontier: FrontierKind::Dfs,
            solver: SolverConfig::default(),
            seed: 42,
            workers: 1,
        }
    }
}

/// The outcome of a forward synthesis attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardResult {
    /// A failure-equivalent execution was found.
    pub found: bool,
    /// Candidate executions run.
    pub candidates_tried: u64,
    /// Total instructions executed across all candidates — the cost
    /// metric that scales with execution length.
    pub total_steps: u64,
    /// The seed of the reproducing candidate.
    pub witness_seed: Option<u64>,
    /// Kernel accounting (nodes, rejections, cut reason, solver cache
    /// hits/misses) in the same shape the RES engine reports.
    pub stats: KernelStats,
}

/// The ESD-like forward searcher.
#[derive(Debug, Clone, Default)]
pub struct ForwardSynthesizer {
    config: ForwardConfig,
}

/// FNV-1a over a string, used to fingerprint observed and goal failure
/// descriptors as solver constants.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn stack_fingerprint(stack: &[Loc]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for loc in stack {
        h ^= fnv1a(&loc.to_string());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One candidate execution, identified by its position in the seed
/// sequence. Within one worker, candidates form a linear chain:
/// expanding the node at global index `i` runs candidate `i` and yields
/// the node at `i + workers` (stride 1 for the sequential scan).
struct FwdNode {
    /// Next candidate index to run (global, across all workers).
    index: u64,
    /// Seed of a reproducing candidate found on the path to this node.
    witness: Option<u64>,
}

struct ForwardDriver<'a> {
    program: &'a Program,
    /// Precomputed goal fingerprints: fault class, then call stack.
    goal_prints: [u64; 2],
    config: &'a ForwardConfig,
    session: SolverSession,
    /// This worker's stride through the candidate indices.
    stride: u64,
    /// Lowest matching candidate index found by *any* worker
    /// (`u64::MAX` until one matches). Workers publish matches here and
    /// stop once no index they could still try can beat it.
    best: &'a AtomicU64,
    candidates_tried: u64,
    total_steps: u64,
}

impl ForwardDriver<'_> {
    fn seed_for(&self, index: u64) -> u64 {
        self.config
            .seed
            .wrapping_add(index.wrapping_mul(0x9e37_79b9))
    }

    /// The minidump-match check as the degenerate concrete case of the
    /// kernel's `S' ⊇ Spost` seam: the observed failure descriptor must
    /// equal the goal's, expressed as equality constraints over
    /// fingerprint constants and discharged by the shared session (so
    /// repeated mismatch shapes hit the memo cache).
    fn matches_goal(&self, observed: [u64; 2]) -> bool {
        let constraints: Vec<ExprRef> = observed
            .iter()
            .zip(self.goal_prints.iter())
            .map(|(&obs, &goal)| Expr::bin(mvm_isa::BinOp::Eq, Expr::konst(obs), Expr::konst(goal)))
            .collect();
        match SessionCompat::new(&self.session).compatible(&constraints) {
            CompatVerdict::Compatible => true,
            // Concrete constraints always decide; treat a (theoretical)
            // Undecided conservatively as a mismatch.
            CompatVerdict::Incompatible | CompatVerdict::Undecided(_) => false,
        }
    }
}

impl HypothesisGen for ForwardDriver<'_> {
    type Node = FwdNode;
    type Candidate = u64;

    fn generate(&mut self, node: &FwdNode) -> Vec<u64> {
        if node.witness.is_some() || node.index >= self.config.budget.max_nodes {
            return Vec::new();
        }
        // Another worker already matched at a lower index than anything
        // this chain can still reach: no candidate here can change the
        // (minimum-index) outcome, so stop scanning.
        if self.best.load(Ordering::SeqCst) < node.index {
            return Vec::new();
        }
        vec![self.seed_for(node.index)]
    }
}

impl StateTransform for ForwardDriver<'_> {
    fn transform(
        &mut self,
        node: &FwdNode,
        cand: &u64,
        stats: &mut KernelStats,
    ) -> Option<(NodeScore, FwdNode)> {
        let seed = *cand;
        let mut m = Machine::new(
            self.program.clone(),
            MachineConfig {
                sched: SchedPolicy::Random {
                    seed,
                    switch_per_mille: 400,
                },
                input: InputSource::Seeded {
                    seed: seed ^ 0x5eed,
                },
                max_steps: self.config.budget.hyp_max_steps,
                ..MachineConfig::default()
            },
        );
        let outcome = m.run();
        self.candidates_tried += 1;
        self.total_steps += m.steps();

        let mut witness = None;
        if let Outcome::Faulted { fault, tid, .. } = outcome {
            let t = &m.threads()[&tid];
            let stack: Vec<Loc> = t.frames.iter().map(|f| f.loc()).collect();
            let observed = [fnv1a(fault.class()), stack_fingerprint(&stack)];
            if self.matches_goal(observed) {
                stats.accepted += 1;
                witness = Some(seed);
                self.best.fetch_min(node.index, Ordering::SeqCst);
            } else {
                // Faulted, but not the goal failure: rejected by the
                // compatibility check.
                stats.rejected_solver += 1;
            }
        } else {
            // Ran to completion (or out of steps) without faulting.
            stats.rejected_exec += 1;
        }

        // The chain always continues: the child either carries the
        // witness (and finalizes on its expansion) or moves on to this
        // worker's next candidate.
        let child = FwdNode {
            index: node.index + self.stride,
            witness,
        };
        let score = NodeScore {
            priority: 0,
            depth: child.index as usize,
            crumbs_matched: usize::from(child.witness.is_some()),
        };
        Some((score, child))
    }

    fn solver_spent(&self) -> u64 {
        self.session.assignments_spent()
    }
}

impl Finalize for ForwardDriver<'_> {
    type Artifact = u64;

    fn depth(&self, node: &FwdNode) -> usize {
        node.index as usize
    }

    fn finalize(&mut self, node: &FwdNode, _stats: &mut KernelStats) -> Option<u64> {
        node.witness
    }
}

impl ForwardSynthesizer {
    /// Creates a searcher with the given configuration.
    pub fn new(config: ForwardConfig) -> Self {
        ForwardSynthesizer { config }
    }

    /// Searches for an execution reproducing the minidump's failure.
    ///
    /// A candidate matches when it faults with the same fault class at
    /// the same program counter with the same call stack — the
    /// information a minidump contains.
    ///
    /// With `workers > 1` the candidate indices are scanned by residue
    /// class across OS threads. `found` and `witness_seed` are
    /// deterministic (always the lowest matching index, as in the
    /// sequential scan); the effort counters (`candidates_tried`,
    /// `total_steps`, kernel stats) are sums over whatever each worker
    /// ran before the early-stop reached it, so they may vary run to
    /// run when a witness exists.
    pub fn synthesize(&self, program: &Program, goal: &Minidump) -> ForwardResult {
        let workers = self.config.workers.max(1);
        let best = AtomicU64::new(u64::MAX);
        if workers == 1 {
            return self.scan_class(program, goal, 0, 1, &best);
        }
        let results: Vec<ForwardResult> = std::thread::scope(|scope| {
            let best = &best;
            let this = &*self;
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    scope.spawn(move || this.scan_class(program, goal, w, workers as u64, best))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("forward-ES worker panicked"))
                .collect()
        });
        let mut merged = ForwardResult {
            found: false,
            candidates_tried: 0,
            total_steps: 0,
            witness_seed: None,
            stats: KernelStats::default(),
        };
        for r in &results {
            merged.candidates_tried += r.candidates_tried;
            merged.total_steps += r.total_steps;
            merged.stats.absorb(&r.stats);
        }
        let min = best.load(Ordering::SeqCst);
        if min != u64::MAX {
            merged.found = true;
            merged.witness_seed =
                Some(self.config.seed.wrapping_add(min.wrapping_mul(0x9e37_79b9)));
            // A witness exists, so per-class exhaustion is not a cut of
            // the overall search.
            merged.stats.cut = None;
        }
        merged
    }

    /// Runs one worker's scan over candidate indices `worker, worker +
    /// stride, …` below the cap, publishing matches to `best`.
    fn scan_class(
        &self,
        program: &Program,
        goal: &Minidump,
        worker: u64,
        stride: u64,
        best: &AtomicU64,
    ) -> ForwardResult {
        let mut driver = ForwardDriver {
            program,
            goal_prints: [
                fnv1a(goal.fault.class()),
                stack_fingerprint(&goal.call_stack()),
            ],
            config: &self.config,
            session: SolverSession::with_config(self.config.solver),
            stride,
            best,
            candidates_tried: 0,
            total_steps: 0,
        };
        let cap = self.config.budget.max_nodes;
        // The node budget is enforced by `generate` (the candidate cap);
        // give the kernel two nodes of headroom so a witness found on
        // the very last candidate still gets its finalize expansion
        // instead of being cut at the pop. Node budgets count per
        // worker, so a sharded scan divides the candidate cap naturally
        // (each class holds at most `ceil(cap / stride)` indices).
        let explore_cfg = ExploreConfig {
            budget: Budget {
                max_nodes: cap.saturating_add(2),
                ..self.config.budget
            },
            max_depth: usize::MAX,
            max_artifacts: 1,
        };
        let mut frontier = self.config.frontier.build();
        let mut stats = KernelStats::default();
        let root = FwdNode {
            index: worker,
            witness: None,
        };
        let artifacts = explore(
            &mut driver,
            root,
            &explore_cfg,
            frontier.as_mut(),
            &mut stats,
            &Recorder::disabled(),
            SpeculativeYield::none(),
        );
        stats.solver = driver.session.stats();
        let witness_seed = artifacts.first().copied();
        if witness_seed.is_none() && stats.cut.is_none() && best.load(Ordering::SeqCst) == u64::MAX
        {
            // The candidate cap is this harness's node budget; record
            // exhausting it as the cut rather than reporting a silently
            // truncated search. (Skipped when another worker matched:
            // stopping early then is success, not exhaustion.)
            stats.cut = Some(CutReason::Nodes);
        }
        ForwardResult {
            found: witness_seed.is_some(),
            candidates_tried: driver.candidates_tried,
            total_steps: driver.total_steps,
            witness_seed,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_core::{Coredump, Minidump};
    use res_workloads::{build, run_to_failure, BugKind, WorkloadParams};

    fn goal_for(kind: BugKind, prefix: u64) -> (Program, Minidump) {
        let p = build(
            kind,
            WorkloadParams {
                prefix_iters: prefix,
                ..WorkloadParams::default()
            },
        );
        let m = (0..300)
            .find_map(|s| run_to_failure(&p, s))
            .expect("workload must fail");
        let d = Coredump::capture(&m);
        (p, Minidump::from_coredump(&d))
    }

    #[test]
    fn finds_deterministic_failures() {
        let (p, goal) = goal_for(BugKind::DivByZero, 10);
        let r = ForwardSynthesizer::default().synthesize(&p, &goal);
        assert!(r.found);
        assert_eq!(r.candidates_tried, 1);
        assert_eq!(r.stats.accepted, 1);
        assert_eq!(r.stats.cut, None);
    }

    #[test]
    fn cost_scales_with_prefix_length() {
        let (p1, g1) = goal_for(BugKind::DivByZero, 10);
        let (p2, g2) = goal_for(BugKind::DivByZero, 10_000);
        let s = ForwardSynthesizer::default();
        let r1 = s.synthesize(&p1, &g1);
        let r2 = s.synthesize(&p2, &g2);
        assert!(r1.found && r2.found);
        assert!(
            r2.total_steps > r1.total_steps * 100,
            "long prefix must cost much more: {} vs {}",
            r2.total_steps,
            r1.total_steps
        );
    }

    #[test]
    fn concurrency_failures_need_many_candidates() {
        let (p, goal) = goal_for(BugKind::AtomicityViolation, 10);
        let r = ForwardSynthesizer::new(ForwardConfig {
            budget: Budget {
                max_nodes: 512,
                ..ForwardConfig::default().budget
            },
            ..ForwardConfig::default()
        })
        .synthesize(&p, &goal);
        // The exact schedule must be re-discovered; this typically takes
        // more than one candidate (and may fail outright).
        assert!(r.candidates_tried >= 1);
        assert!(r.total_steps > 0);
    }

    #[test]
    fn parallel_scan_reports_the_sequential_witness() {
        // A goal needing schedule re-discovery, so the witness usually
        // sits at index > 0 and the early-stop logic is exercised.
        let (p, goal) = goal_for(BugKind::AtomicityViolation, 10);
        let base = ForwardConfig {
            budget: Budget {
                max_nodes: 64,
                ..ForwardConfig::default().budget
            },
            ..ForwardConfig::default()
        };
        let sequential = ForwardSynthesizer::new(base.clone()).synthesize(&p, &goal);
        for workers in [2, 4] {
            let r = ForwardSynthesizer::new(ForwardConfig {
                workers,
                ..base.clone()
            })
            .synthesize(&p, &goal);
            assert_eq!(r.found, sequential.found, "workers = {workers}");
            assert_eq!(
                r.witness_seed, sequential.witness_seed,
                "parallel scan must report the lowest-index witness (workers = {workers})"
            );
        }
    }

    #[test]
    fn exhausted_candidate_space_is_a_recorded_cut() {
        // An impossible goal: doctor the minidump's fault class so no
        // candidate can ever match.
        let (p, mut goal) = goal_for(BugKind::DivByZero, 10);
        goal.fault = mvm_machine::Fault::OutOfMemory;
        let r = ForwardSynthesizer::new(ForwardConfig {
            budget: Budget {
                max_nodes: 8,
                ..ForwardConfig::default().budget
            },
            ..ForwardConfig::default()
        })
        .synthesize(&p, &goal);
        assert!(!r.found);
        assert_eq!(r.candidates_tried, 8);
        assert_eq!(r.stats.cut, Some(CutReason::Nodes));
        // Repeated mismatch shapes share memoized solver answers.
        assert!(r.stats.solver.queries >= 1);
        assert!(r.stats.solver.cache_hits + r.stats.solver.cache_misses == r.stats.solver.queries);
    }
}
