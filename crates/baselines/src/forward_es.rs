//! Forward execution synthesis (ESD-like baseline).
//!
//! Execution synthesis [Zamfir & Candea, EuroSys'10] searches *forward*
//! from the program's start state for an execution that reproduces the
//! failure, guided by the minidump (call stack + fault). Our baseline
//! reproduces its cost structure: every candidate must execute the
//! entire prefix, so the work is `O(candidates × execution length)` —
//! and the candidate space (schedules × inputs) grows with the number of
//! scheduling and input choice points, which itself grows with length.
//! RES's cost is independent of both (experiment E3).

use mvm_core::Minidump;
use mvm_isa::Program;
use mvm_machine::{
    InputSource,
    Machine,
    MachineConfig,
    Outcome,
    SchedPolicy, //
};

/// Forward-search configuration.
#[derive(Debug, Clone)]
pub struct ForwardConfig {
    /// Candidate executions to try before giving up.
    pub max_candidates: u64,
    /// Per-candidate step budget.
    pub max_steps_per_candidate: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for ForwardConfig {
    fn default() -> Self {
        ForwardConfig {
            max_candidates: 256,
            max_steps_per_candidate: 5_000_000,
            seed: 42,
        }
    }
}

/// The outcome of a forward synthesis attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardResult {
    /// A failure-equivalent execution was found.
    pub found: bool,
    /// Candidate executions run.
    pub candidates_tried: u64,
    /// Total instructions executed across all candidates — the cost
    /// metric that scales with execution length.
    pub total_steps: u64,
    /// The seed of the reproducing candidate.
    pub witness_seed: Option<u64>,
}

/// The ESD-like forward searcher.
#[derive(Debug, Clone, Default)]
pub struct ForwardSynthesizer {
    config: ForwardConfig,
}

impl ForwardSynthesizer {
    /// Creates a searcher with the given configuration.
    pub fn new(config: ForwardConfig) -> Self {
        ForwardSynthesizer { config }
    }

    /// Searches for an execution reproducing the minidump's failure.
    ///
    /// A candidate matches when it faults with the same fault class at
    /// the same program counter with the same call stack — the
    /// information a minidump contains.
    pub fn synthesize(&self, program: &Program, goal: &Minidump) -> ForwardResult {
        let mut total_steps = 0u64;
        for i in 0..self.config.max_candidates {
            let seed = self.config.seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
            let mut m = Machine::new(
                program.clone(),
                MachineConfig {
                    sched: SchedPolicy::Random {
                        seed,
                        switch_per_mille: 400,
                    },
                    input: InputSource::Seeded { seed: seed ^ 0x5eed },
                    max_steps: self.config.max_steps_per_candidate,
                    ..MachineConfig::default()
                },
            );
            let outcome = m.run();
            total_steps += m.steps();
            let Outcome::Faulted { fault, tid, .. } = outcome else {
                continue;
            };
            if fault.class() != goal.fault.class() {
                continue;
            }
            let t = &m.threads()[&tid];
            let stack: Vec<_> = t.frames.iter().map(|f| f.loc()).collect();
            if stack == goal.call_stack() {
                return ForwardResult {
                    found: true,
                    candidates_tried: i + 1,
                    total_steps,
                    witness_seed: Some(seed),
                };
            }
        }
        ForwardResult {
            found: false,
            candidates_tried: self.config.max_candidates,
            total_steps,
            witness_seed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvm_core::{Coredump, Minidump};
    use res_workloads::{build, run_to_failure, BugKind, WorkloadParams};

    fn goal_for(kind: BugKind, prefix: u64) -> (Program, Minidump) {
        let p = build(
            kind,
            WorkloadParams {
                prefix_iters: prefix,
                ..WorkloadParams::default()
            },
        );
        let m = (0..300)
            .find_map(|s| run_to_failure(&p, s))
            .expect("workload must fail");
        let d = Coredump::capture(&m);
        (p, Minidump::from_coredump(&d))
    }

    #[test]
    fn finds_deterministic_failures() {
        let (p, goal) = goal_for(BugKind::DivByZero, 10);
        let r = ForwardSynthesizer::default().synthesize(&p, &goal);
        assert!(r.found);
        assert_eq!(r.candidates_tried, 1);
    }

    #[test]
    fn cost_scales_with_prefix_length() {
        let (p1, g1) = goal_for(BugKind::DivByZero, 10);
        let (p2, g2) = goal_for(BugKind::DivByZero, 10_000);
        let s = ForwardSynthesizer::default();
        let r1 = s.synthesize(&p1, &g1);
        let r2 = s.synthesize(&p2, &g2);
        assert!(r1.found && r2.found);
        assert!(
            r2.total_steps > r1.total_steps * 100,
            "long prefix must cost much more: {} vs {}",
            r2.total_steps,
            r1.total_steps
        );
    }

    #[test]
    fn concurrency_failures_need_many_candidates() {
        let (p, goal) = goal_for(BugKind::AtomicityViolation, 10);
        let r = ForwardSynthesizer::new(ForwardConfig {
            max_candidates: 512,
            ..ForwardConfig::default()
        })
        .synthesize(&p, &goal);
        // The exact schedule must be re-discovered; this typically takes
        // more than one candidate (and may fail outright).
        assert!(r.candidates_tried >= 1);
        assert!(r.total_steps > 0);
    }
}
