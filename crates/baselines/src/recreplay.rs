//! Record-replay cost models (the paper's §1 motivation).
//!
//! "Making a multi-threaded execution on a multicore CPU reproducible
//! requires logging a large number of memory operations, and this causes
//! existing deterministic record-replay systems to have high performance
//! overhead (e.g., 400% for SMP-ReVirt and 60% for ODR, even for a
//! 2-core CPU)."
//!
//! The baseline runs a workload with full tracing and converts the event
//! stream into the *log volume* and *slowdown* an always-on recorder
//! would impose. The per-event costs are models (documented constants
//! chosen to land the published 2-core numbers in the right ballpark);
//! the experiment's claim is the *shape*: full memory-order recording ≫
//! output-deterministic recording ≫ no recording (RES), and both logs
//! grow linearly without bound while RES records nothing.

use mvm_isa::Program;
use mvm_machine::{
    InputSource,
    Machine,
    MachineConfig,
    Outcome,
    SchedPolicy,
    TraceEvent,
    TraceLevel, //
};

/// Which recorder to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderKind {
    /// SMP-ReVirt-like: logs the outcome of every shared-memory access
    /// (CREW page-protection faults dominate its cost).
    FullMemoryOrder,
    /// ODR-like output-deterministic recording: inputs, synchronization
    /// order, and outputs only; memory races are *not* logged and must
    /// be inferred offline.
    OutputDeterministic,
    /// No recording at all — RES's operating point.
    None,
}

impl RecorderKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RecorderKind::FullMemoryOrder => "full-memory-order (SMP-ReVirt-like)",
            RecorderKind::OutputDeterministic => "output-deterministic (ODR-like)",
            RecorderKind::None => "no recording (RES)",
        }
    }
}

/// Cost model constants (per event, in "instruction equivalents" and
/// log bytes). The instruction-equivalent costs are calibrated so a
/// memory-heavy 2-thread workload lands near the published 2-core
/// overheads (≈400% / ≈60%).
mod model {
    /// Extra instruction-equivalents per logged memory access
    /// (page-protection fault + ownership transfer amortized).
    pub const FULL_PER_MEM: f64 = 9.0;
    /// Log bytes per memory-order entry (addr + value + vector stamp).
    pub const FULL_BYTES_PER_MEM: u64 = 20;
    /// Extra instruction-equivalents per input/sync/output event for
    /// output-deterministic recording.
    pub const ODR_PER_EVENT: f64 = 6.0;
    /// Extra instruction-equivalents per branch for ODR's path sketch.
    pub const ODR_PER_BRANCH: f64 = 0.45;
    /// Log bytes per input/sync/output entry.
    pub const ODR_BYTES_PER_EVENT: u64 = 12;
    /// Log bytes per 64 branches (bit-packed path sketch).
    pub const ODR_BYTES_PER_BRANCH_WORD: u64 = 8;
}

/// Measured/modelled recording cost for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingCost {
    /// Recorder modelled.
    pub kind: RecorderKind,
    /// Instructions the bare program executed.
    pub base_steps: u64,
    /// Events the recorder must log.
    pub events_logged: u64,
    /// Log bytes produced.
    pub log_bytes: u64,
    /// Modelled slowdown as a percentage over bare execution (0 = no
    /// overhead, 400 = 5× slower).
    pub overhead_percent: f64,
}

/// Runs `program` and models the recorder's cost on that execution.
pub fn measure_recording(program: &Program, kind: RecorderKind, seed: u64) -> RecordingCost {
    let mut m = Machine::new(
        program.clone(),
        MachineConfig {
            sched: SchedPolicy::Random {
                seed,
                switch_per_mille: 300,
            },
            input: InputSource::Seeded { seed },
            trace: TraceLevel::Full,
            max_steps: 20_000_000,
            ..MachineConfig::default()
        },
    );
    let outcome = m.run();
    let base_steps = match outcome {
        Outcome::Halted { steps }
        | Outcome::Faulted { steps, .. }
        | Outcome::StepLimit { steps } => steps,
    };
    let mut mem_events = 0u64;
    let mut io_sync_events = 0u64;
    for e in m.tracer().events() {
        match e {
            TraceEvent::Mem { .. } => mem_events += 1,
            TraceEvent::Input { .. } | TraceEvent::Sync { .. } => io_sync_events += 1,
            _ => {}
        }
    }
    let outputs = m.outputs().len() as u64;
    let branches = m
        .tracer()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::BlockEnter { .. }))
        .count() as u64;

    let (events_logged, log_bytes, extra_insts) = match kind {
        RecorderKind::FullMemoryOrder => (
            mem_events,
            mem_events * model::FULL_BYTES_PER_MEM,
            mem_events as f64 * model::FULL_PER_MEM,
        ),
        RecorderKind::OutputDeterministic => {
            let ev = io_sync_events + outputs;
            (
                ev + branches,
                ev * model::ODR_BYTES_PER_EVENT
                    + branches.div_ceil(64) * model::ODR_BYTES_PER_BRANCH_WORD,
                ev as f64 * model::ODR_PER_EVENT + branches as f64 * model::ODR_PER_BRANCH,
            )
        }
        RecorderKind::None => (0, 0, 0.0),
    };
    let overhead_percent = if base_steps == 0 {
        0.0
    } else {
        100.0 * extra_insts / base_steps as f64
    };
    RecordingCost {
        kind,
        base_steps,
        events_logged,
        log_bytes,
        overhead_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use res_workloads::{build, BugKind, WorkloadParams};

    fn workload(prefix: u64) -> Program {
        build(
            BugKind::DataRace,
            WorkloadParams {
                prefix_iters: prefix,
                ..WorkloadParams::default()
            },
        )
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        let p = workload(200);
        let full = measure_recording(&p, RecorderKind::FullMemoryOrder, 7);
        let odr = measure_recording(&p, RecorderKind::OutputDeterministic, 7);
        let none = measure_recording(&p, RecorderKind::None, 7);
        assert!(full.overhead_percent > odr.overhead_percent);
        assert!(odr.overhead_percent > none.overhead_percent);
        assert_eq!(none.overhead_percent, 0.0);
        assert_eq!(none.log_bytes, 0);
    }

    #[test]
    fn overheads_land_in_published_ballpark() {
        // Shape check: full-order recording in the hundreds of percent,
        // output-deterministic in the tens.
        let p = workload(500);
        let full = measure_recording(&p, RecorderKind::FullMemoryOrder, 3);
        let odr = measure_recording(&p, RecorderKind::OutputDeterministic, 3);
        assert!(
            full.overhead_percent > 150.0 && full.overhead_percent < 1200.0,
            "full: {}",
            full.overhead_percent
        );
        assert!(
            odr.overhead_percent > 10.0 && odr.overhead_percent < 150.0,
            "odr: {}",
            odr.overhead_percent
        );
    }

    #[test]
    fn logs_grow_with_execution_length() {
        let short = measure_recording(&workload(100), RecorderKind::FullMemoryOrder, 5);
        let long = measure_recording(&workload(10_000), RecorderKind::FullMemoryOrder, 5);
        assert!(long.log_bytes > short.log_bytes * 10);
    }
}
