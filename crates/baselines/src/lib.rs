//! # Baselines the paper compares RES against
//!
//! * [`forward_es`] — forward execution synthesis (ESD-like): search for
//!   a failure-reproducing execution *from the program start*, using
//!   only the minidump as the goal. Its cost grows with execution
//!   length — the paper's core criticism (§1: "the longer the execution
//!   [...] the harder it becomes to synthesize an execution all the way
//!   from the start").
//! * [`slicer`] — backward *static* analysis (PSE-like): computes a
//!   backward slice from the failure PC without consulting coredump
//!   values; sound but imprecise (§2.2).
//! * [`recreplay`] — always-on record-replay cost models (SMP-ReVirt-
//!   like full memory-order logging vs ODR-like output-deterministic
//!   logging), quantifying §1's motivation.
//! * [`wer`] — Windows-Error-Reporting-style call-stack bucketing
//!   (§3.1).
//! * [`exploitable_heur`] — a `!exploitable`-style heuristic crash
//!   classifier (§5).

pub mod exploitable_heur;
pub mod forward_es;
pub mod recreplay;
pub mod slicer;
pub mod wer;

pub use exploitable_heur::{classify_heuristic, Exploitability};
pub use forward_es::{ForwardConfig, ForwardResult, ForwardSynthesizer};
pub use recreplay::{measure_recording, RecorderKind, RecordingCost};
pub use slicer::{backward_slice, SliceResult};
pub use wer::{
    bucket_by_stack, build_report_labeled, misbucket_rate, misbucket_rate_labeled, signature_key,
    BucketingReport,
};
