//! A WER-style triaging pipeline with RES in the loop (paper §3.1).
//!
//! Generates a corpus of failures from several distinct bugs (one of
//! which manifests with multiple call stacks, and two of which collide
//! on the same stack), buckets it both ways, and prints the comparison.
//!
//! ```text
//! cargo run --release --example triage_pipeline
//! ```

use res_debugger::baselines::wer::bucket_by_stack;
use res_debugger::prelude::*;
use res_debugger::triage::{res_bucket_keys, triage_corpus};
use res_debugger::workloads::{generate_corpus, CorpusSpec};

fn main() {
    let spec = CorpusSpec {
        kinds: vec![
            BugKind::RaceNullDeref, // one bug, many stacks
            BugKind::UafSameStack,  // different bug, same stack
            BugKind::UseAfterFree,
            BugKind::DivByZero,
        ],
        per_kind: 4,
        ..CorpusSpec::default()
    };
    println!(
        "generating corpus ({} bug kinds × {} failures)...",
        spec.kinds.len(),
        spec.per_kind
    );
    let corpus = generate_corpus(&spec);
    println!("{} labeled failure reports\n", corpus.len());

    // Naive: bucket by stack signature, like Windows Error Reporting.
    let wer = bucket_by_stack(&corpus, 1);
    println!("WER-like stack bucketing (depth 1):");
    for (key, members) in &wer.buckets {
        let kinds: Vec<&str> = members.iter().map(|&i| corpus[i].kind.name()).collect();
        println!("  bucket {key}: {kinds:?}");
    }
    println!(
        "  => {} buckets for {} bugs, {:.0}% mis-bucketed\n",
        wer.bucket_count(),
        wer.distinct_bugs,
        wer.misbucket_rate * 100.0
    );

    // RES: bucket by synthesized root cause.
    println!("RES root-cause bucketing:");
    let keys = res_bucket_keys(&corpus, &ResConfig::default(), None);
    let mut seen = std::collections::BTreeMap::new();
    for (r, k) in corpus.iter().zip(&keys) {
        seen.entry(k.clone())
            .or_insert_with(Vec::new)
            .push(r.kind.name());
    }
    for (key, kinds) in &seen {
        println!("  bucket {key}: {kinds:?}");
    }
    let cmp = triage_corpus(&corpus, 1, &ResConfig::default());
    println!(
        "  => {} buckets for {} bugs, {:.0}% mis-bucketed",
        cmp.res.bucket_count(),
        cmp.res.distinct_bugs,
        cmp.res.misbucket_rate * 100.0
    );
    println!(
        "\nsummary: stack bucketing mis-buckets {:.0}%, RES {:.0}%",
        cmp.wer.misbucket_rate * 100.0,
        cmp.res.misbucket_rate * 100.0
    );
}
