//! Post-mortem debugging of a concurrency bug (paper §4 + §3.3).
//!
//! A worker thread races with the main thread on a shared flag; the
//! failure only manifests under some schedules. RES reconstructs the
//! interleaving from the coredump alone, identifies the racing write,
//! and answers the §3.3 debugging queries.
//!
//! ```text
//! cargo run --release --example race_detective
//! ```

use res_debugger::prelude::*;
use res_debugger::res::debugaid;

fn main() {
    let program = build_workload(BugKind::DataRace, WorkloadParams::default());

    // Hunt for a schedule under which the race manifests (in production
    // this is the one-in-a-thousand failing run).
    let machine = (0..500)
        .find_map(|seed| res_debugger::workloads::run_to_failure(&program, seed))
        .expect("the race manifests under some schedule");
    let dump = Coredump::capture(&machine);
    println!(
        "production failure: `{}` in thread {} after {} steps",
        dump.fault, dump.faulting_tid, dump.steps
    );

    // Synthesize and pick a replay-verified suffix that explains it.
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    println!(
        "synthesis: {} suffixes from {} hypotheses",
        result.suffixes.len(),
        result.stats.hypotheses
    );
    let mut diagnosis = None;
    for suffix in &result.suffixes {
        if !replay_suffix(&program, &dump, suffix).reproduced {
            continue;
        }
        let rc = analyze_root_cause(&program, &dump, suffix);
        if rc.is_concurrency() {
            diagnosis = Some((suffix, rc));
            break;
        }
    }
    let (suffix, rc) = diagnosis.expect("a reproducing suffix exposes the race");
    println!("root cause: {rc:?}");

    // §3.3 debugging aids: what did the failing window actually touch?
    let (reads, writes) = debugaid::focus_report(suffix);
    println!("\nfocus report (the window's working set):");
    for e in &reads {
        println!("  read  {:#x} ({})", e.addr, e.region);
    }
    for e in &writes {
        println!("  write {:#x} ({})", e.addr, e.region);
    }

    // "Was the main thread preempted between its accesses to the
    // counter?" — the paper's example hypothesis query.
    if let RootCause::DataRace {
        addr, other_tid, ..
    } = &rc
    {
        let preempted = debugaid::was_preempted_between_accesses(suffix, *other_tid, *addr);
        println!(
            "\nwas thread {} preempted between accesses to {:#x}? {}",
            other_tid, addr, preempted
        );
    }

    // The schedule that reproduces the bug, for the debugger session.
    println!("\nreplayable schedule (tid, instructions):");
    for (tid, n) in suffix.schedule() {
        println!("  thread {tid}: {n} steps");
    }
}
