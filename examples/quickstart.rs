//! Quickstart: crash a program, synthesize the suffix, replay it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use res_debugger::prelude::*;

fn main() {
    // A program with a latent division-by-zero: a quota counter is
    // drained to zero and then used as a divisor.
    let program = assemble(
        r#"
        global quota 8 = 3
        func main() {
        entry:
            addr r0, quota
            load r1, [r0]
            sub r1, r1, 3
            store r1, [r0]
            jmp serve
        serve:
            load r2, [r0]
            divu r3, 1000, r2
            halt
        }
        "#,
    )
    .expect("program assembles");

    // Production: the program runs and dies. The only artifact is the
    // coredump — no recording, no logs, no instrumentation.
    let mut machine = Machine::new(program.clone(), MachineConfig::default());
    let outcome = machine.run();
    println!("production outcome: {outcome:?}");
    let dump = Coredump::capture(&machine);
    println!(
        "coredump: fault `{}` at {}, {} page(s) of memory",
        dump.fault,
        dump.fault_pc(),
        dump.memory.page_count()
    );

    // Post-mortem: reverse execution synthesis.
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    println!(
        "synthesis: {:?}, {} suffix(es), {} hypotheses tested",
        result.verdict,
        result.suffixes.len(),
        result.stats.hypotheses
    );
    let suffix = &result.suffixes[0];
    println!(
        "suffix: {} block-steps, {} instructions, inferred inputs: {:?}",
        suffix.len(),
        suffix.total_steps(),
        suffix.inputs
    );

    // The developer replays the suffix — deterministically — as many
    // times as they like.
    for i in 0..3 {
        let replay = replay_suffix(&program, &dump, suffix);
        println!(
            "replay #{i}: reproduced={} fault={:?}",
            replay.reproduced, replay.replay_fault
        );
        assert!(replay.reproduced);
    }

    // And asks for the root cause.
    let rc = analyze_root_cause(&program, &dump, suffix);
    println!("root cause: {rc:?}");
    println!("bucket key: {}", rc.bucket_key());
}
