//! Is this crash a software bug or a flipped DRAM bit? (paper §3.2)
//!
//! Captures a genuine software-bug coredump, then manufactures a
//! hardware-corrupted variant of it (one flipped memory bit, one
//! corrupted register) and shows RES telling the three apart — and
//! localizing the corruption.
//!
//! ```text
//! cargo run --release --example hardware_or_software
//! ```

use res_debugger::coredump::{corrupt_register_at, flip_memory_bit_at};
use res_debugger::prelude::*;

fn main() {
    let program = assemble(
        r#"
        global sensor 8
        func main() {
        entry:
            addr r0, sensor
            store 4, [r0]
            jmp check
        check:
            load r1, [r0]
            eq r2, r1, 0
            assert r2, "sensor reading must be zero"
            halt
        }
        "#,
    )
    .expect("program assembles");

    let mut machine = Machine::new(program.clone(), MachineConfig::default());
    machine.run();
    let genuine = Coredump::capture(&machine);
    let config = ResConfig::default();

    // 1. The genuine dump: a software bug (the program really does
    //    store 4 and then assert it is 0).
    let verdict = hardware_verdict(&program, &genuine, &config);
    println!("genuine dump        → {verdict:?}");
    assert_eq!(verdict, HwVerdict::SoftwareBug);

    // 2. A DRAM bit flip: the dump says `sensor == 5`, but every
    //    feasible execution writes 4 — the paper's memory-error example.
    let mut flipped = genuine.clone();
    let g = res_debugger::isa::layout::GLOBAL_BASE;
    flip_memory_bit_at(&mut flipped, g, 0);
    let verdict = hardware_verdict(&program, &flipped, &config);
    println!("bit-flipped dump    → {verdict:?}");
    assert!(matches!(
        verdict,
        HwVerdict::HardwareSuspected {
            kind: res_debugger::res::hwerr::HwKind::MemoryError { .. },
            ..
        }
    ));

    // 3. A CPU datapath error: the register holding the comparison
    //    result disagrees with every feasible computation — the paper's
    //    miscomputed-addition example.
    let mut miscomputed = genuine.clone();
    corrupt_register_at(&mut miscomputed, 0, res_debugger::isa::Reg(1), 0xbad0);
    let verdict = hardware_verdict(&program, &miscomputed, &config);
    println!("corrupted-reg dump  → {verdict:?}");
    assert!(matches!(
        verdict,
        HwVerdict::HardwareSuspected {
            kind: res_debugger::res::hwerr::HwKind::CpuError { .. },
            ..
        }
    ));

    println!("\nall three dumps classified correctly");
}
