//! `res-cli` — drive the RES pipeline from the command line.
//!
//! ```text
//! res-cli demo <bug>          run a bundled buggy workload end to end
//! res-cli list                list bundled bug workloads
//! res-cli crash <bug> <dir>   crash a workload; write program.json + dump.json
//! res-cli synthesize <dir>    synthesize + replay + root-cause from those files
//! res-cli verdict <dir>       hardware-vs-software verdict for the dump
//! res-cli trace <journal>     pretty-print a res-obs JSONL trace journal
//! ```
//!
//! Programs and coredumps are exchanged as JSON, so dumps can be
//! inspected, archived, or corrupted (for §3.2 experiments) with
//! ordinary tools. `synthesize` honors `RES_TRACE=<path>`: the run is
//! journaled there, and `res-cli trace <path>` renders the span tree
//! and counter totals afterwards.

use std::path::Path;

use res_debugger::prelude::*;
use res_debugger::workloads::run_to_failure;

fn find_kind(name: &str) -> Option<BugKind> {
    BugKind::ALL.into_iter().find(|k| k.name() == name)
}

fn load(dir: &Path) -> Result<(Program, Coredump), String> {
    let p = std::fs::read_to_string(dir.join("program.json"))
        .map_err(|e| format!("reading program.json: {e}"))?;
    let d = std::fs::read_to_string(dir.join("dump.json"))
        .map_err(|e| format!("reading dump.json: {e}"))?;
    let program: Program =
        mvm_json::from_str(&p).map_err(|e| format!("parsing program.json: {e}"))?;
    let dump: Coredump = mvm_json::from_str(&d).map_err(|e| format!("parsing dump.json: {e}"))?;
    Ok((program, dump))
}

fn cmd_list() {
    println!("bundled bug workloads:");
    for k in BugKind::ALL {
        println!(
            "  {:<24} {}",
            k.name(),
            if k.is_concurrent() {
                "(concurrent)"
            } else {
                ""
            }
        );
    }
}

fn cmd_crash(kind: BugKind, dir: &Path) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("program.json"),
        mvm_json::to_string_pretty(&program),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(dir.join("dump.json"), mvm_json::to_string_pretty(&dump))
        .map_err(|e| e.to_string())?;
    println!(
        "crashed {} (`{}` in thread {}); wrote {}/program.json and dump.json",
        kind.name(),
        dump.fault,
        dump.faulting_tid,
        dir.display()
    );
    Ok(())
}

fn cmd_synthesize(dir: &Path) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    println!(
        "fault: `{}` at {} (thread {})",
        dump.fault,
        dump.fault_pc(),
        dump.faulting_tid
    );
    let mut builder = ResConfig::builder();
    if let Ok(p) = std::env::var("RES_TRACE") {
        builder = builder.trace(p);
    }
    let engine = ResEngine::new(&program, builder.build());
    let result = engine.synthesize(&dump);
    println!(
        "verdict: {:?} — {} suffix(es), {} hypotheses, deepest {}",
        result.verdict,
        result.suffixes.len(),
        result.stats.hypotheses,
        result.stats.deepest
    );
    for (i, sfx) in result.suffixes.iter().enumerate() {
        let rep = replay_suffix(&program, &dump, sfx);
        print!(
            "suffix #{i}: {} blocks / {} instructions, replay {}",
            sfx.len(),
            sfx.total_steps(),
            if rep.reproduced {
                "REPRODUCED"
            } else {
                "diverged"
            }
        );
        if rep.reproduced {
            let rc = analyze_root_cause(&program, &dump, sfx);
            println!(", root cause: {}", rc.bucket_key());
        } else {
            println!();
        }
    }
    Ok(())
}

fn cmd_verdict(dir: &Path) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let verdict = hardware_verdict(&program, &dump, &ResConfig::default());
    println!("{verdict:?}");
    Ok(())
}

fn cmd_trace(path: &Path) -> Result<(), String> {
    let events = read_journal(path)?;
    println!("{} events in {}", events.len(), path.display());
    print!("{}", res_debugger::obs::render::render(&events));
    Ok(())
}

fn cmd_demo(kind: BugKind) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    println!(
        "production failure: `{}` after {} steps",
        dump.fault, dump.steps
    );
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    println!(
        "synthesis: {:?} ({} hypotheses)",
        result.verdict, result.stats.hypotheses
    );
    for sfx in &result.suffixes {
        if !replay_suffix(&program, &dump, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(&program, &dump, sfx);
        println!(
            "replay-verified suffix: {} blocks, schedule {:?}",
            sfx.len(),
            sfx.schedule()
        );
        println!("root cause: {rc:?}");
        return Ok(());
    }
    Err("no suffix replayed".into())
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  res-cli list\n  res-cli demo <bug>\n  res-cli crash <bug> <dir>\n  res-cli synthesize <dir>\n  res-cli verdict <dir>\n  res-cli trace <journal>"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("demo") => match args.get(1).and_then(|n| find_kind(n)) {
            Some(kind) => cmd_demo(kind),
            None => Err("unknown bug name (try `res-cli list`)".into()),
        },
        Some("crash") => match (args.get(1).and_then(|n| find_kind(n)), args.get(2)) {
            (Some(kind), Some(dir)) => cmd_crash(kind, Path::new(dir)),
            _ => usage(),
        },
        Some("synthesize") => match args.get(1) {
            Some(dir) => cmd_synthesize(Path::new(dir)),
            None => usage(),
        },
        Some("verdict") => match args.get(1) {
            Some(dir) => cmd_verdict(Path::new(dir)),
            None => usage(),
        },
        Some("trace") => match args.get(1) {
            Some(journal) => cmd_trace(Path::new(journal)),
            None => usage(),
        },
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
