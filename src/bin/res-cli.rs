//! `res-cli` — drive the RES pipeline from the command line.
//!
//! ```text
//! res-cli demo <bug>          run a bundled buggy workload end to end
//! res-cli list                list bundled bug workloads
//! res-cli crash <bug> <dir>   crash a workload; write program.json + dump.json
//! res-cli synthesize <dir> [--workers N] [--store FILE] [--trace PATH]
//!                             synthesize + replay + root-cause from those files
//! res-cli verdict <dir>       hardware-vs-software verdict for the dump
//! res-cli trace <journal>     pretty-print a res-obs JSONL trace journal
//! res-cli serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N]
//!               [--store DIR] [--trace PATH]
//!                             run the triage daemon in the foreground
//! res-cli submit <dir> [--addr A] [--max-nodes N] [--deadline-ms N] [--workers N]
//!                             send the dir's program+dump to a running daemon
//! res-cli shutdown [--addr A] ask a running daemon to exit
//! ```
//!
//! Programs and coredumps are exchanged as JSON, so dumps can be
//! inspected, archived, or corrupted (for §3.2 experiments) with
//! ordinary tools. `synthesize` journals to `--trace PATH` (or the
//! `RES_TRACE=<path>` environment fallback), and `res-cli trace <path>`
//! renders the span tree and counter totals afterwards. `serve`/`submit`
//! speak the typed [`res_debugger::triage::TriageRequest`] wire protocol
//! over loopback TCP or (with `--addr unix:/path`) a unix socket.

use std::path::Path;

use res_debugger::prelude::*;
use res_debugger::serve::{serve, ServeConfig, TriageClient};
use res_debugger::triage::TriageRequest;
use res_debugger::workloads::run_to_failure;

const DEFAULT_ADDR: &str = "127.0.0.1:7466";

/// Splits `args` into positional operands and `--flag value` pairs.
/// Unknown flags and missing values fall through to `usage()`.
fn parse_flags(args: &[String], known: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                usage();
            }
            match it.next() {
                Some(v) => flags.push((name.to_string(), v.clone())),
                None => usage(),
            }
        } else {
            pos.push(a.clone());
        }
    }
    (pos, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parsed<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
) -> Result<Option<T>, String> {
    match flag(flags, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name}: invalid value `{v}`")),
    }
}

fn find_kind(name: &str) -> Option<BugKind> {
    BugKind::ALL.into_iter().find(|k| k.name() == name)
}

fn load(dir: &Path) -> Result<(Program, Coredump), String> {
    let p = std::fs::read_to_string(dir.join("program.json"))
        .map_err(|e| format!("reading program.json: {e}"))?;
    let d = std::fs::read_to_string(dir.join("dump.json"))
        .map_err(|e| format!("reading dump.json: {e}"))?;
    let program: Program =
        mvm_json::from_str(&p).map_err(|e| format!("parsing program.json: {e}"))?;
    let dump: Coredump = mvm_json::from_str(&d).map_err(|e| format!("parsing dump.json: {e}"))?;
    Ok((program, dump))
}

fn cmd_list() {
    println!("bundled bug workloads:");
    for k in BugKind::ALL {
        println!(
            "  {:<24} {}",
            k.name(),
            if k.is_concurrent() {
                "(concurrent)"
            } else {
                ""
            }
        );
    }
}

fn cmd_crash(kind: BugKind, dir: &Path) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("program.json"),
        mvm_json::to_string_pretty(&program),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(dir.join("dump.json"), mvm_json::to_string_pretty(&dump))
        .map_err(|e| e.to_string())?;
    println!(
        "crashed {} (`{}` in thread {}); wrote {}/program.json and dump.json",
        kind.name(),
        dump.fault,
        dump.faulting_tid,
        dir.display()
    );
    Ok(())
}

fn cmd_synthesize(dir: &Path, flags: &[(String, String)]) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    println!(
        "fault: `{}` at {} (thread {})",
        dump.fault,
        dump.fault_pc(),
        dump.faulting_tid
    );
    let mut opts = SynthOptions::default();
    if let Some(w) = parsed::<usize>(flags, "workers")? {
        opts = opts.workers(w);
    }
    if let Some(s) = flag(flags, "store") {
        opts = opts.cache_path(s);
    }
    // --trace wins; RES_TRACE stays as the environment fallback.
    match flag(flags, "trace") {
        Some(t) => opts = opts.trace(t),
        None => {
            if let Ok(p) = std::env::var("RES_TRACE") {
                opts = opts.trace(p);
            }
        }
    }
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize_with(&dump, opts);
    println!(
        "verdict: {:?} — {} suffix(es), {} hypotheses, deepest {}",
        result.verdict,
        result.suffixes.len(),
        result.stats.hypotheses,
        result.stats.deepest
    );
    for (i, sfx) in result.suffixes.iter().enumerate() {
        let rep = replay_suffix(&program, &dump, sfx);
        print!(
            "suffix #{i}: {} blocks / {} instructions, replay {}",
            sfx.len(),
            sfx.total_steps(),
            if rep.reproduced {
                "REPRODUCED"
            } else {
                "diverged"
            }
        );
        if rep.reproduced {
            let rc = analyze_root_cause(&program, &dump, sfx);
            println!(", root cause: {}", rc.bucket_key());
        } else {
            println!();
        }
    }
    Ok(())
}

fn cmd_verdict(dir: &Path) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let verdict = hardware_verdict(&program, &dump, &ResConfig::default());
    println!("{verdict:?}");
    Ok(())
}

fn cmd_trace(path: &Path) -> Result<(), String> {
    let events = read_journal(path)?;
    println!("{} events in {}", events.len(), path.display());
    print!("{}", res_debugger::obs::render::render(&events));
    Ok(())
}

fn cmd_demo(kind: BugKind) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    println!(
        "production failure: `{}` after {} steps",
        dump.fault, dump.steps
    );
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    println!(
        "synthesis: {:?} ({} hypotheses)",
        result.verdict, result.stats.hypotheses
    );
    for sfx in &result.suffixes {
        if !replay_suffix(&program, &dump, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(&program, &dump, sfx);
        println!(
            "replay-verified suffix: {} blocks, schedule {:?}",
            sfx.len(),
            sfx.schedule()
        );
        println!("root cause: {rc:?}");
        return Ok(());
    }
    Err("no suffix replayed".into())
}

fn cmd_serve(flags: &[(String, String)]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    if let Some(a) = flag(flags, "addr") {
        cfg.addr = a.to_string();
    }
    if let Some(w) = parsed(flags, "workers")? {
        cfg.workers = w;
    }
    if let Some(q) = parsed(flags, "queue-cap")? {
        cfg.queue_cap = q;
    }
    if let Some(h) = parsed(flags, "hot-cap")? {
        cfg.hot_cap = h;
    }
    if let Some(s) = flag(flags, "store") {
        cfg.store_dir = Some(s.into());
    }
    if let Some(t) = flag(flags, "trace") {
        cfg.trace = Some(t.into());
    }
    let mut handle = serve(cfg).map_err(|e| format!("starting daemon: {e}"))?;
    println!("addr: {}", handle.addr());
    handle.wait();
    Ok(())
}

fn cmd_submit(dir: &Path, flags: &[(String, String)]) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let mut req = TriageRequest::new(program, dump);
    if let Some(n) = parsed(flags, "max-nodes")? {
        req = req.max_nodes(n);
    }
    if let Some(ms) = parsed(flags, "deadline-ms")? {
        req = req.deadline_ms(ms);
    }
    if let Some(w) = parsed(flags, "workers")? {
        req = req.workers(w);
    }
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        TriageClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let resp = client.triage(req).map_err(|e| format!("submitting: {e}"))?;
    match resp {
        Ok(r) => {
            println!("verdict: {:?}", r.verdict);
            println!("bucket: {}", r.bucket_key);
            for (i, s) in r.suffixes.iter().enumerate() {
                println!(
                    "suffix #{i}: {} blocks / {} instructions, replay {}",
                    s.steps,
                    s.instructions,
                    if s.replayed { "REPRODUCED" } else { "diverged" }
                );
            }
            Ok(())
        }
        Err(other) => Err(format!("daemon declined the request: {other:?}")),
    }
}

fn cmd_shutdown(flags: &[(String, String)]) -> Result<(), String> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        TriageClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    client
        .shutdown()
        .map_err(|e| format!("shutting down: {e}"))?;
    println!("daemon at {addr} is shutting down");
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  res-cli list\n  res-cli demo <bug>\n  res-cli crash <bug> <dir>\n  res-cli synthesize <dir> [--workers N] [--store FILE] [--trace PATH]\n  res-cli verdict <dir>\n  res-cli trace <journal>\n  res-cli serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N] [--store DIR] [--trace PATH]\n  res-cli submit <dir> [--addr A] [--max-nodes N] [--deadline-ms N] [--workers N]\n  res-cli shutdown [--addr A]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("demo") => match args.get(1).and_then(|n| find_kind(n)) {
            Some(kind) => cmd_demo(kind),
            None => Err("unknown bug name (try `res-cli list`)".into()),
        },
        Some("crash") => match (args.get(1).and_then(|n| find_kind(n)), args.get(2)) {
            (Some(kind), Some(dir)) => cmd_crash(kind, Path::new(dir)),
            _ => usage(),
        },
        Some("synthesize") => {
            let (pos, flags) = parse_flags(&args[1..], &["workers", "store", "trace"]);
            match pos.first() {
                Some(dir) => cmd_synthesize(Path::new(dir), &flags),
                None => usage(),
            }
        }
        Some("verdict") => match args.get(1) {
            Some(dir) => cmd_verdict(Path::new(dir)),
            None => usage(),
        },
        Some("trace") => match args.get(1) {
            Some(journal) => cmd_trace(Path::new(journal)),
            None => usage(),
        },
        Some("serve") => {
            let (pos, flags) = parse_flags(
                &args[1..],
                &["addr", "workers", "queue-cap", "hot-cap", "store", "trace"],
            );
            if !pos.is_empty() {
                usage();
            }
            cmd_serve(&flags)
        }
        Some("submit") => {
            let (pos, flags) =
                parse_flags(&args[1..], &["addr", "max-nodes", "deadline-ms", "workers"]);
            match pos.first() {
                Some(dir) => cmd_submit(Path::new(dir), &flags),
                None => usage(),
            }
        }
        Some("shutdown") => {
            let (pos, flags) = parse_flags(&args[1..], &["addr"]);
            if !pos.is_empty() {
                usage();
            }
            cmd_shutdown(&flags)
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
