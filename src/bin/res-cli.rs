//! `res-cli` — drive the RES pipeline from the command line.
//!
//! ```text
//! res-cli demo <bug>          run a bundled buggy workload end to end
//! res-cli list                list bundled bug workloads
//! res-cli crash <bug> <dir> [--emit-fixed]
//!                             crash a workload; write program.json + dump.json
//!                             (--emit-fixed also writes program.fixed.json)
//! res-cli synthesize <dir> [--workers N] [--store FILE] [--trace PATH]
//!                             synthesize + replay + root-cause from those files
//! res-cli record <dir> [--out FILE] [--workers N] [--store FILE] [--trace PATH]
//!                             synthesize, then save a portable replay trace
//!                             (.restrace = JSON, .restrace.bin = binary)
//! res-cli replay <dir> <trace>
//!                             re-run a recorded trace; exit 0 iff REPRODUCED
//! res-cli verify <dir> <trace>
//!                             check the dir's program against a recording:
//!                             PASS, or FAIL with the first divergence
//! res-cli verdict <dir>       hardware-vs-software verdict for the dump
//! res-cli trace <journal>     pretty-print a res-obs JSONL trace journal
//! res-cli serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N]
//!               [--store DIR] [--trace PATH] [--slow-us N]
//!                             run the triage daemon in the foreground
//! res-cli submit <dir> [--addr A] [--max-nodes N] [--deadline-ms N] [--workers N]
//!               [--emit-trace FILE]
//!                             send the dir's program+dump to a running daemon
//! res-cli shutdown [--addr A] ask a running daemon to exit
//! res-cli stats [--addr A] [--json] [--latency-json]
//!                             one-shot telemetry snapshot from a daemon
//! res-cli top [--addr A] [--interval-ms N] [--count N]
//!                             polling live view of a daemon's telemetry
//! res-cli journal <file> [--span PREFIX] [--counters GLOB] [--req ID]
//!                [--requests] [--quantiles]
//!                             query a JSONL journal: span subtrees, counter
//!                             globs, per-request trees, percentile summaries
//! ```
//!
//! Programs and coredumps are exchanged as JSON, so dumps can be
//! inspected, archived, or corrupted (for §3.2 experiments) with
//! ordinary tools. `serve`/`submit` speak the typed
//! [`res_debugger::triage::TriageRequest`] wire protocol over loopback
//! TCP or (with `--addr unix:/path`) a unix socket.
//!
//! # Observability journal precedence
//!
//! Every subcommand that journals res-obs events (`synthesize`,
//! `record`, `serve`) resolves the journal path the same way: an
//! explicit `--trace PATH` flag always wins; otherwise the `RES_TRACE`
//! environment variable is the fallback; otherwise no journal is
//! written. This is the single authoritative statement of that
//! precedence — [`journal_path`] implements it. (Replay traces —
//! `record`/`replay`/`verify` files — are unrelated to the journal;
//! they use `--out` and positional paths.)

use std::path::Path;

use res_debugger::obs::{query, read_journal_full, Event, EventKind};
use res_debugger::prelude::*;
use res_debugger::serve::{serve, ServeConfig, StatsRequest, StatsResponse, TriageClient};
use res_debugger::triage::{bucket_key_for, TriageRequest};
use res_debugger::workloads::{build_fixed, run_to_failure};

const DEFAULT_ADDR: &str = "127.0.0.1:7466";

/// Splits `args` into positional operands and `--flag value` pairs.
/// Unknown flags and missing values fall through to `usage()`.
fn parse_flags(args: &[String], known: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                usage();
            }
            match it.next() {
                Some(v) => flags.push((name.to_string(), v.clone())),
                None => usage(),
            }
        } else {
            pos.push(a.clone());
        }
    }
    (pos, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parsed<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
) -> Result<Option<T>, String> {
    match flag(flags, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name}: invalid value `{v}`")),
    }
}

fn find_kind(name: &str) -> Option<BugKind> {
    BugKind::ALL.into_iter().find(|k| k.name() == name)
}

fn load_program(dir: &Path) -> Result<Program, String> {
    let p = std::fs::read_to_string(dir.join("program.json"))
        .map_err(|e| format!("reading program.json: {e}"))?;
    mvm_json::from_str(&p).map_err(|e| format!("parsing program.json: {e}"))
}

fn load(dir: &Path) -> Result<(Program, Coredump), String> {
    let program = load_program(dir)?;
    let d = std::fs::read_to_string(dir.join("dump.json"))
        .map_err(|e| format!("reading dump.json: {e}"))?;
    let dump: Coredump = mvm_json::from_str(&d).map_err(|e| format!("parsing dump.json: {e}"))?;
    Ok((program, dump))
}

/// The one place `--trace` vs `RES_TRACE` precedence is decided: the
/// flag wins, the environment variable is the fallback.
fn journal_path(flags: &[(String, String)]) -> Option<String> {
    flag(flags, "trace")
        .map(str::to_string)
        .or_else(|| std::env::var("RES_TRACE").ok())
}

/// Shared `--workers` / `--store` / `--trace` handling for the
/// subcommands that run a synthesis ([`cmd_synthesize`], [`cmd_record`]).
fn synth_opts(flags: &[(String, String)]) -> Result<SynthOptions, String> {
    let mut opts = SynthOptions::default();
    if let Some(w) = parsed::<usize>(flags, "workers")? {
        opts = opts.workers(w);
    }
    if let Some(s) = flag(flags, "store") {
        opts = opts.cache_path(s);
    }
    if let Some(t) = journal_path(flags) {
        opts = opts.trace(t);
    }
    Ok(opts)
}

fn cmd_list() {
    println!("bundled bug workloads:");
    for k in BugKind::ALL {
        println!(
            "  {:<24} {}",
            k.name(),
            if k.is_concurrent() {
                "(concurrent)"
            } else {
                ""
            }
        );
    }
}

fn cmd_crash(kind: BugKind, dir: &Path, emit_fixed: bool) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("program.json"),
        mvm_json::to_string_pretty(&program),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(dir.join("dump.json"), mvm_json::to_string_pretty(&dump))
        .map_err(|e| e.to_string())?;
    println!(
        "crashed {} (`{}` in thread {}); wrote {}/program.json and dump.json",
        kind.name(),
        dump.fault,
        dump.faulting_tid,
        dir.display()
    );
    if emit_fixed {
        let fixed = build_fixed(kind, WorkloadParams::default())
            .ok_or_else(|| format!("{} has no fixed variant", kind.name()))?;
        std::fs::write(
            dir.join("program.fixed.json"),
            mvm_json::to_string_pretty(&fixed),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote {}/program.fixed.json (bug repaired)", dir.display());
    }
    Ok(())
}

fn cmd_synthesize(dir: &Path, flags: &[(String, String)]) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    println!(
        "fault: `{}` at {} (thread {})",
        dump.fault,
        dump.fault_pc(),
        dump.faulting_tid
    );
    let opts = synth_opts(flags)?;
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize_with(&dump, opts);
    println!(
        "verdict: {:?} — {} suffix(es), {} hypotheses, deepest {}",
        result.verdict,
        result.suffixes.len(),
        result.stats.hypotheses,
        result.stats.deepest
    );
    for (i, sfx) in result.suffixes.iter().enumerate() {
        let rep = replay_suffix(&program, &dump, sfx);
        print!(
            "suffix #{i}: {} blocks / {} instructions, replay {}",
            sfx.len(),
            sfx.total_steps(),
            if rep.reproduced {
                "REPRODUCED"
            } else {
                "diverged"
            }
        );
        if rep.reproduced {
            let rc = analyze_root_cause(&program, &dump, sfx);
            println!(", root cause: {}", rc.bucket_key());
        } else {
            println!();
        }
    }
    Ok(())
}

fn cmd_record(dir: &Path, flags: &[(String, String)]) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let opts = synth_opts(flags)?;
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize_with(&dump, opts);
    if result.suffixes.is_empty() {
        return Err(format!(
            "synthesis produced no suffixes (verdict {:?})",
            result.verdict
        ));
    }
    let bucket = bucket_key_for(&program, &dump, &result.suffixes);
    let out = flag(flags, "out")
        .map(Into::into)
        .unwrap_or_else(|| dir.join("repro.restrace"));
    let rec = Recorder::disabled();
    let mut last_err = String::from("no suffix replayed deterministically");
    for sfx in &result.suffixes {
        let trace = match record_trace(&program, &dump, sfx, Some(bucket.clone()), &rec) {
            Ok(t) => t,
            Err(e) => {
                last_err = e.to_string();
                continue;
            }
        };
        let encoding = trace
            .write(&out)
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!(
            "recorded {} ({}): {} events / {} instructions, {} writes, bucket {}",
            out.display(),
            encoding.name(),
            trace.steps.len(),
            trace.expected.total_steps,
            trace.total_writes(),
            bucket
        );
        return Ok(());
    }
    Err(last_err)
}

fn cmd_replay(dir: &Path, trace_path: &Path) -> Result<(), String> {
    let program = load_program(dir)?;
    let (trace, encoding) = TraceFile::read(trace_path).map_err(|e| e.to_string())?;
    println!(
        "{} ({}): format v{}, program {:016x}, {} events, expected `{}`",
        trace_path.display(),
        encoding.name(),
        trace.header.format_version,
        trace.header.program_fp,
        trace.steps.len(),
        trace.expected.fault
    );
    let report =
        replay_trace(&program, &trace, &Recorder::disabled()).map_err(|e| e.to_string())?;
    if report.reproduced {
        println!("replay REPRODUCED the recorded failure");
        Ok(())
    } else {
        Err("replay diverged from the recorded failure".into())
    }
}

fn cmd_verify(dir: &Path, trace_path: &Path) -> Result<(), String> {
    let program = load_program(dir)?;
    let (trace, encoding) = TraceFile::read(trace_path).map_err(|e| e.to_string())?;
    let out = verify_trace(&program, &trace, &Recorder::disabled());
    if !out.fingerprint_matches {
        println!(
            "note: program differs from the recording (recorded {:016x})",
            trace.header.program_fp
        );
    }
    if out.pass {
        println!(
            "PASS: {} events ({}) replayed identically; fault `{}` reproduced",
            trace.steps.len(),
            encoding.name(),
            trace.expected.fault
        );
        Ok(())
    } else {
        match &out.divergence {
            Some(d) => println!("FAIL: first divergence at {d}"),
            None => println!("FAIL: replay did not reproduce the recorded failure"),
        }
        Err("trace verification failed".into())
    }
}

fn cmd_verdict(dir: &Path) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let verdict = hardware_verdict(&program, &dump, &ResConfig::default());
    println!("{verdict:?}");
    Ok(())
}

fn cmd_trace(path: &Path) -> Result<(), String> {
    let events = read_journal(path)?;
    println!("{} events in {}", events.len(), path.display());
    print!("{}", res_debugger::obs::render::render(&events));
    Ok(())
}

fn cmd_demo(kind: BugKind) -> Result<(), String> {
    let program = build_workload(kind, WorkloadParams::default());
    let machine = (0..500)
        .find_map(|s| run_to_failure(&program, s))
        .ok_or_else(|| format!("{} did not fail in 500 schedules", kind.name()))?;
    let dump = Coredump::capture(&machine);
    println!(
        "production failure: `{}` after {} steps",
        dump.fault, dump.steps
    );
    let engine = ResEngine::new(&program, ResConfig::default());
    let result = engine.synthesize(&dump);
    println!(
        "synthesis: {:?} ({} hypotheses)",
        result.verdict, result.stats.hypotheses
    );
    for sfx in &result.suffixes {
        if !replay_suffix(&program, &dump, sfx).reproduced {
            continue;
        }
        let rc = analyze_root_cause(&program, &dump, sfx);
        println!(
            "replay-verified suffix: {} blocks, schedule {:?}",
            sfx.len(),
            sfx.schedule()
        );
        println!("root cause: {rc:?}");
        return Ok(());
    }
    Err("no suffix replayed".into())
}

fn cmd_serve(flags: &[(String, String)]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    if let Some(a) = flag(flags, "addr") {
        cfg.addr = a.to_string();
    }
    if let Some(w) = parsed(flags, "workers")? {
        cfg.workers = w;
    }
    if let Some(q) = parsed(flags, "queue-cap")? {
        cfg.queue_cap = q;
    }
    if let Some(h) = parsed(flags, "hot-cap")? {
        cfg.hot_cap = h;
    }
    if let Some(s) = flag(flags, "store") {
        cfg.store_dir = Some(s.into());
    }
    if let Some(t) = flag(flags, "trace") {
        cfg.trace = Some(t.into());
    }
    if let Some(s) = parsed(flags, "slow-us")? {
        cfg.slow_us = Some(s);
    }
    let mut handle = serve(cfg).map_err(|e| format!("starting daemon: {e}"))?;
    println!("addr: {}", handle.addr());
    handle.wait();
    Ok(())
}

fn cmd_submit(dir: &Path, flags: &[(String, String)]) -> Result<(), String> {
    let (program, dump) = load(dir)?;
    let mut req = TriageRequest::new(program, dump);
    if let Some(n) = parsed(flags, "max-nodes")? {
        req = req.max_nodes(n);
    }
    if let Some(ms) = parsed(flags, "deadline-ms")? {
        req = req.deadline_ms(ms);
    }
    if let Some(w) = parsed(flags, "workers")? {
        req = req.workers(w);
    }
    let emit_trace = flag(flags, "emit-trace");
    if emit_trace.is_some() {
        req = req.return_trace(true);
    }
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        TriageClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let resp = client.triage(req).map_err(|e| format!("submitting: {e}"))?;
    match resp {
        Ok(r) => {
            println!("verdict: {:?}", r.verdict);
            println!("bucket: {}", r.bucket_key);
            for (i, s) in r.suffixes.iter().enumerate() {
                println!(
                    "suffix #{i}: {} blocks / {} instructions, replay {}",
                    s.steps,
                    s.instructions,
                    if s.replayed { "REPRODUCED" } else { "diverged" }
                );
            }
            if let Some(path) = emit_trace {
                match &r.trace {
                    Some(text) => {
                        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
                        println!("wrote replay trace to {path}");
                    }
                    None => println!("daemon returned no replay trace (nothing reproduced?)"),
                }
            }
            Ok(())
        }
        Err(other) => Err(format!("daemon declined the request: {other:?}")),
    }
}

fn cmd_shutdown(flags: &[(String, String)]) -> Result<(), String> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        TriageClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    client
        .shutdown()
        .map_err(|e| format!("shutting down: {e}"))?;
    println!("daemon at {addr} is shutting down");
    Ok(())
}

/// Renders a `StatsResponse` through `obs::render` by synthesizing a
/// small event stream from it: gauges for the counters, bucketed
/// histogram events for the latency distributions, one mark per
/// flight-recorder entry. One renderer for journals, `stats`, and
/// `top`.
fn stats_events(resp: &StatsResponse) -> Vec<Event> {
    let mut kinds: Vec<EventKind> = Vec::new();
    let s = &resp.server;
    for (name, value) in [
        ("serve.queue.depth", s.queue_depth),
        ("serve.queue.cap", s.queue_cap),
        ("serve.workers", s.workers),
        ("serve.hot.programs", s.hot_programs),
        ("serve.hot.hits", s.hot_hits),
        ("serve.hot.misses", s.hot_misses),
        ("serve.hot.evictions", s.hot_evictions),
        ("serve.admitted", s.admitted),
        ("serve.rejected.queue", s.rejected_queue),
        ("serve.rejected.budget", s.rejected_budget),
        ("serve.completed", s.completed),
        ("serve.requests", resp.requests),
        ("serve.connections", resp.connections),
    ] {
        kinds.push(EventKind::Gauge {
            name: name.into(),
            value,
        });
    }
    for h in &resp.histograms {
        kinds.push(EventKind::Histo {
            name: h.name.clone(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: Some(h.buckets.clone()),
        });
    }
    for r in &resp.recent {
        kinds.push(EventKind::Mark {
            name: format!("recent.{}", r.req_id),
            fields: vec![
                ("endpoint".into(), r.endpoint.clone()),
                ("outcome".into(), r.outcome.clone()),
                ("total_us".into(), r.total_us.to_string()),
                ("queue_wait_us".into(), r.queue_wait_us.to_string()),
                ("synth_us".into(), r.synth_us.to_string()),
                ("store_us".into(), r.store_us.to_string()),
            ],
        });
    }
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| Event {
            seq: i as u64,
            t_us: 0,
            kind,
        })
        .collect()
}

/// The `BENCH_serve_latency.json` payload: per-endpoint count and
/// p50/p95/p99, keyed by the endpoint name (from the
/// `serve.rtt.<endpoint>_us` histogram naming convention).
fn latency_json(resp: &StatsResponse) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for h in &resp.histograms {
        let Some(endpoint) = h
            .name
            .strip_prefix("serve.rtt.")
            .and_then(|n| n.strip_suffix("_us"))
        else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{endpoint}\":{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            h.count, h.p50, h.p95, h.p99
        ));
    }
    out.push('}');
    out
}

fn fetch_stats(addr: &str) -> Result<StatsResponse, String> {
    let mut client =
        TriageClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    client
        .stats_query(&StatsRequest::default())
        .map_err(|e| format!("querying stats: {e}"))
}

fn cmd_stats(flags: &[(String, String)], json: bool, latency: bool) -> Result<(), String> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let resp = fetch_stats(addr)?;
    if latency {
        println!("{}", latency_json(&resp));
        return Ok(());
    }
    if json {
        println!("{}", mvm_json::to_string_pretty(&resp));
        return Ok(());
    }
    println!(
        "daemon {addr}: up {}ms, {} requests over {} connections",
        resp.uptime_us / 1_000,
        resp.requests,
        resp.connections
    );
    print!(
        "{}",
        res_debugger::obs::render::render(&stats_events(&resp))
    );
    Ok(())
}

fn cmd_top(flags: &[(String, String)]) -> Result<(), String> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    let interval_ms: u64 = parsed(flags, "interval-ms")?.unwrap_or(1000);
    let count: u64 = parsed(flags, "count")?.unwrap_or(0);
    let mut shown = 0u64;
    loop {
        let resp = fetch_stats(addr)?;
        // Clear the screen and home the cursor between frames.
        print!("\x1b[2J\x1b[H");
        println!(
            "res-serve {addr} — up {}ms, {} requests / {} connections (^C to quit)",
            resp.uptime_us / 1_000,
            resp.requests,
            resp.connections
        );
        print!(
            "{}",
            res_debugger::obs::render::render(&stats_events(&resp))
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        shown += 1;
        if count != 0 && shown >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn cmd_journal(
    path: &Path,
    flags: &[(String, String)],
    requests: bool,
    quantiles: bool,
) -> Result<(), String> {
    let journal = read_journal_full(path)?;
    let events = &journal.events;
    println!("{} events in {}", events.len(), path.display());
    for (line, version) in &journal.skipped {
        println!("  skipped line {line}: unknown journal version {version}");
    }

    let mut filtered = false;
    if let Some(prefix) = flag(flags, "span") {
        filtered = true;
        let tree = query::render_span_prefix(events, prefix);
        if tree.is_empty() {
            println!("no spans under prefix {prefix:?}");
        } else {
            print!("{tree}");
        }
    }
    if let Some(pattern) = flag(flags, "counters") {
        filtered = true;
        let counters = query::counters_matching(events, pattern);
        if counters.is_empty() {
            println!("no counters matching {pattern:?}");
        } else {
            for (name, total) in counters {
                println!("{name:<44} {total}");
            }
        }
    }
    if let Some(req_id) = flag(flags, "req") {
        filtered = true;
        match query::render_request(events, req_id) {
            Some(tree) => print!("{tree}"),
            None => return Err(format!("no request {req_id:?} in {}", path.display())),
        }
    }
    if quantiles {
        filtered = true;
        for h in query::histo_summaries(events) {
            println!(
                "{:<44} n={} p50={} p95={} p99={} max={}",
                h.name, h.count, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    if requests || !filtered {
        let entries = query::requests(events);
        if entries.is_empty() {
            println!("no requests (no *.req.meta marks)");
        } else {
            println!(
                "{:<10} {:<16} {:>5}  {:<8} dur_us",
                "req", "endpoint", "spans", "status"
            );
            let mut broken = 0usize;
            for e in &entries {
                let status = if e.reconciled() { "ok" } else { "BROKEN" };
                if !e.reconciled() {
                    broken += 1;
                }
                println!(
                    "{:<10} {:<16} {:>5}  {:<8} {}",
                    e.req_id,
                    e.endpoint,
                    e.spans,
                    status,
                    e.dur_us
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "open".into())
                );
            }
            // The CI reconciliation gate: every request's span tree
            // must resolve, carry phase children, and be fully closed.
            if requests && broken > 0 {
                return Err(format!("{broken} request(s) did not reconcile"));
            }
        }
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage:
  res-cli list
  res-cli demo <bug>
  res-cli crash <bug> <dir> [--emit-fixed]
  res-cli synthesize <dir> [--workers N] [--store FILE] [--trace PATH]
  res-cli record <dir> [--out FILE] [--workers N] [--store FILE] [--trace PATH]
  res-cli replay <dir> <trace-file>
  res-cli verify <dir> <trace-file>
  res-cli verdict <dir>
  res-cli trace <journal>
  res-cli serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N] [--store DIR] [--trace PATH] [--slow-us N]
  res-cli submit <dir> [--addr A] [--max-nodes N] [--deadline-ms N] [--workers N] [--emit-trace FILE]
  res-cli shutdown [--addr A]
  res-cli stats [--addr A] [--json] [--latency-json]
  res-cli top [--addr A] [--interval-ms N] [--count N]
  res-cli journal <file> [--span PREFIX] [--counters GLOB] [--req ID] [--requests] [--quantiles]

replay traces end in .restrace (JSON) or .restrace.bin (binary).
--trace PATH is the res-obs journal; it wins over the RES_TRACE env fallback."
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("demo") => match args.get(1).and_then(|n| find_kind(n)) {
            Some(kind) => cmd_demo(kind),
            None => Err("unknown bug name (try `res-cli list`)".into()),
        },
        Some("crash") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let emit_fixed = match rest.iter().position(|a| a == "--emit-fixed") {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            match (rest.first().and_then(|n| find_kind(n)), rest.get(1)) {
                (Some(kind), Some(dir)) => cmd_crash(kind, Path::new(dir), emit_fixed),
                _ => usage(),
            }
        }
        Some("synthesize") => {
            let (pos, flags) = parse_flags(&args[1..], &["workers", "store", "trace"]);
            match pos.first() {
                Some(dir) => cmd_synthesize(Path::new(dir), &flags),
                None => usage(),
            }
        }
        Some("record") => {
            let (pos, flags) = parse_flags(&args[1..], &["out", "workers", "store", "trace"]);
            match pos.first() {
                Some(dir) => cmd_record(Path::new(dir), &flags),
                None => usage(),
            }
        }
        Some("replay") => match (args.get(1), args.get(2)) {
            (Some(dir), Some(trace)) => cmd_replay(Path::new(dir), Path::new(trace)),
            _ => usage(),
        },
        Some("verify") => match (args.get(1), args.get(2)) {
            (Some(dir), Some(trace)) => cmd_verify(Path::new(dir), Path::new(trace)),
            _ => usage(),
        },
        Some("verdict") => match args.get(1) {
            Some(dir) => cmd_verdict(Path::new(dir)),
            None => usage(),
        },
        Some("trace") => match args.get(1) {
            Some(journal) => cmd_trace(Path::new(journal)),
            None => usage(),
        },
        Some("serve") => {
            let (pos, flags) = parse_flags(
                &args[1..],
                &[
                    "addr",
                    "workers",
                    "queue-cap",
                    "hot-cap",
                    "store",
                    "trace",
                    "slow-us",
                ],
            );
            if !pos.is_empty() {
                usage();
            }
            cmd_serve(&flags)
        }
        Some("submit") => {
            let (pos, flags) = parse_flags(
                &args[1..],
                &["addr", "max-nodes", "deadline-ms", "workers", "emit-trace"],
            );
            match pos.first() {
                Some(dir) => cmd_submit(Path::new(dir), &flags),
                None => usage(),
            }
        }
        Some("shutdown") => {
            let (pos, flags) = parse_flags(&args[1..], &["addr"]);
            if !pos.is_empty() {
                usage();
            }
            cmd_shutdown(&flags)
        }
        Some("stats") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let mut bool_flag = |name: &str| match rest.iter().position(|a| a == name) {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            let json = bool_flag("--json");
            let latency = bool_flag("--latency-json");
            let (pos, flags) = parse_flags(&rest, &["addr"]);
            if !pos.is_empty() {
                usage();
            }
            cmd_stats(&flags, json, latency)
        }
        Some("top") => {
            let (pos, flags) = parse_flags(&args[1..], &["addr", "interval-ms", "count"]);
            if !pos.is_empty() {
                usage();
            }
            cmd_top(&flags)
        }
        Some("journal") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let mut bool_flag = |name: &str| match rest.iter().position(|a| a == name) {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            let requests = bool_flag("--requests");
            let quantiles = bool_flag("--quantiles");
            let (pos, flags) = parse_flags(&rest, &["span", "counters", "req"]);
            match pos.first() {
                Some(file) => cmd_journal(Path::new(file), &flags, requests, quantiles),
                None => usage(),
            }
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
