//! `store-inspect` — examine (and optionally compact) a `res-store`
//! solver-result store, or dump the header of a `res-trace` replay
//! trace.
//!
//! ```text
//! store-inspect <file>             print header, stats, record counts
//! store-inspect <file> --compact   also rewrite the file dropping
//!                                  superseded records
//! ```
//!
//! The file kind is sniffed from its magic bytes: replay traces
//! (`.restrace` / `.restrace.bin`, either encoding) get a trace report
//! — header, fingerprints, event counts, schedule summary, expected
//! outcome; anything else is treated as a solver store. Read-only by
//! default (`--compact` is refused on traces): inspection never
//! modifies the file. The program fingerprint is taken from the file's
//! own header, so any valid file can be inspected without the program
//! it was built for.

use std::path::Path;

use res_debugger::store::{LoadOutcome, SolverStore};
use res_debugger::trace::{Encoding, TraceFile};

fn inspect_trace(path: &Path, compact: bool) -> Result<(), String> {
    if compact {
        return Err("replay traces are immutable; --compact applies only to stores".into());
    }
    let (trace, encoding) = TraceFile::read(path).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("replay trace: {}", path.display());
    println!("  encoding:         {}", encoding.name());
    println!("  format version:   {}", trace.header.format_version);
    println!("  program fp:       {:#018x}", trace.header.program_fp);
    println!("  suffix fp:        {:#018x}", trace.expected.suffix_fp);
    println!("  writer:           {}", trace.header.writer);
    println!("  bytes:            {bytes}");
    println!("  events:           {}", trace.steps.len());
    println!("  instructions:     {}", trace.expected.total_steps);
    println!("  recorded writes:  {}", trace.total_writes());
    println!(
        "  image:            {} cells, {} thread(s){}",
        trace.image.initial_cells.len(),
        trace.image.start_positions.len(),
        if trace.image.approximate {
            ", approximate"
        } else {
            ""
        }
    );
    let scripted: usize = trace.inputs.values().map(Vec::len).sum();
    println!("  scripted inputs:  {scripted}");
    println!("  schedule:");
    for (tid, events, steps) in trace.schedule_summary() {
        println!("    thread {tid}: {events} event(s), {steps} instruction(s)");
    }
    println!(
        "  expected:         `{}` in thread {}",
        trace.expected.fault, trace.expected.faulting_tid
    );
    if let Some(bucket) = &trace.expected.bucket {
        println!("  bucket:           {bucket}");
    }
    Ok(())
}

fn inspect(path: &Path, compact: bool) -> Result<(), String> {
    if !path.exists() {
        return Err(format!("no store at {}", path.display()));
    }
    let head = std::fs::read(path).map_err(|e| e.to_string())?;
    if Encoding::sniff(&head).is_some() {
        return inspect_trace(path, compact);
    }
    let mut store = SolverStore::open_for_inspection(path);
    let report = *store.load_report();
    let header = store.header().clone();
    let stats = *store.stats();

    println!("store: {}", path.display());
    println!("  outcome:          {:?}", report.outcome);
    println!("  format version:   {}", header.format_version);
    println!("  program fp:       {:#018x}", header.program_fp);
    println!("  isa:              {}", header.isa);
    println!("  writer:           {}", header.writer);
    println!("  bytes:            {}", report.bytes);
    println!("  live entries:     {}", report.entries_loaded);
    println!("  superseded:       {}", report.superseded);
    println!("  verdicts:         {}", report.verdicts_loaded);
    println!("  torn/skipped:     {}", report.records_skipped);
    let total = report.entries_loaded + report.superseded;
    let ratio = if total == 0 {
        0.0
    } else {
        report.superseded as f64 / total as f64
    };
    println!("  superseded ratio: {ratio:.2}");
    println!("  stats (persisted at last commit):");
    println!("    entries:        {}", stats.entries);
    println!("    bytes:          {}", stats.bytes);
    println!("    absorbed hits:  {}", stats.absorbed_hits);
    println!("    commits:        {}", stats.commits);
    println!("    compactions:    {}", stats.compactions);

    if !store.verdicts().is_empty() {
        // Verdict certificates, grouped by scope, with per-worker
        // provenance (`replay` = re-certified by the sequential replay).
        use std::collections::BTreeMap;
        let mut by_scope: BTreeMap<u64, (usize, usize, BTreeMap<u32, usize>)> = BTreeMap::new();
        for v in store.verdicts() {
            let (exhausted, artifact, workers) = by_scope.entry(v.scope).or_default();
            match v.kind {
                res_debugger::symbolic::VerdictKind::Exhausted => *exhausted += 1,
                res_debugger::symbolic::VerdictKind::HasArtifact => *artifact += 1,
            }
            *workers.entry(v.worker).or_default() += 1;
        }
        println!("  verdict certificates:");
        for (scope, (exhausted, artifact, workers)) in &by_scope {
            println!("    scope {scope:#018x}: {exhausted} exhausted, {artifact} with-artifact");
            for (worker, n) in workers {
                if *worker == res_debugger::symbolic::REPLAY_ORIGIN {
                    println!("      replay: {n}");
                } else {
                    println!("      worker {worker}: {n}");
                }
            }
        }
    }

    if !compact {
        return Ok(());
    }
    if report.outcome != LoadOutcome::Loaded {
        return Err(format!(
            "refusing to compact: store did not load cleanly ({:?})",
            report.outcome
        ));
    }
    let c = store.compact().map_err(|e| format!("compacting: {e}"))?;
    println!(
        "compacted: dropped {} superseded record(s), {} -> {} bytes",
        c.dropped, c.bytes_before, c.bytes_after
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compact = args.iter().any(|a| a == "--compact");
    let paths: Vec<&String> = args.iter().filter(|a| *a != "--compact").collect();
    let [path] = paths.as_slice() else {
        eprintln!("usage: store-inspect <store-file> [--compact]");
        std::process::exit(2);
    };
    if let Err(e) = inspect(Path::new(path), compact) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
