//! `res-serve` — the standalone triage daemon.
//!
//! ```text
//! res-serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N]
//!           [--store DIR] [--trace PATH] [--slow-us N]
//!           [--ceiling-nodes N] [--ceiling-deadline-ms N]
//! ```
//!
//! Boots the daemon, prints the bound address on stdout (`addr: ...`),
//! and serves until a client sends a shutdown request (`res-cli
//! shutdown <addr>`). See `res_serve` for the protocol and DESIGN.md
//! for the service architecture.

use std::path::PathBuf;
use std::time::Duration;

use res_debugger::serve::{serve, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: res-serve [--addr A] [--workers N] [--queue-cap N] [--hot-cap N] \
         [--store DIR] [--trace PATH] [--slow-us N] [--ceiling-nodes N] [--ceiling-deadline-ms N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut ceiling_nodes: Option<u64> = None;
    let mut ceiling_deadline_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => cfg.queue_cap = val().parse().unwrap_or_else(|_| usage()),
            "--hot-cap" => cfg.hot_cap = val().parse().unwrap_or_else(|_| usage()),
            "--store" => cfg.store_dir = Some(PathBuf::from(val())),
            "--trace" => cfg.trace = Some(PathBuf::from(val())),
            "--slow-us" => cfg.slow_us = Some(val().parse().unwrap_or_else(|_| usage())),
            "--ceiling-nodes" => ceiling_nodes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--ceiling-deadline-ms" => {
                ceiling_deadline_ms = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    if ceiling_nodes.is_some() || ceiling_deadline_ms.is_some() {
        let mut b = cfg.config.budget();
        if let Some(n) = ceiling_nodes {
            b.max_nodes = n;
        }
        b.deadline = ceiling_deadline_ms.map(Duration::from_millis);
        cfg.ceiling = Some(b);
    }
    match serve(cfg) {
        Ok(mut handle) => {
            println!("addr: {}", handle.addr());
            handle.wait();
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
