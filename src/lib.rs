//! # res-debugger — Reverse Execution Synthesis
//!
//! A complete Rust implementation of *"Automated Debugging for
//! Arbitrarily Long Executions"* (Zamfir, Kasikci, Kinder, Bugnion,
//! Candea — HotOS XIV, 2013): given a program and a coredump — and
//! nothing recorded at runtime — synthesize the suffix of a feasible
//! execution that deterministically reproduces the failure, then use it
//! to triage bug reports, identify hardware errors, and debug.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `mvm-isa` | the MicroVM instruction set, assembler, CFG |
//! | [`machine`] | `mvm-machine` | deterministic multi-threaded interpreter |
//! | [`coredump`] | `mvm-core` | coredump format, minidumps, fault injection |
//! | [`symbolic`] | `mvm-symbolic` | expression DAG + constraint solver |
//! | [`res`] | `res-core` | **the paper's contribution**: suffix search, replay, analyses |
//! | [`obs`] | `res-obs` | hermetic tracing/metrics: spans, counters, JSONL journal |
//! | [`store`] | `res-store` | persistent cross-run solver-result store |
//! | [`trace`] | `res-trace` | portable on-disk replay traces: record / replay / verify |
//! | [`serve`] | `res-serve` | triage daemon: typed requests over checksummed framing |
//! | [`baselines`] | `res-baselines` | forward ES, static slicing, record-replay, WER, !exploitable |
//! | [`triage`] | `res-triage` | bucketing, exploitability, hardware filtering |
//! | [`workloads`] | `res-workloads` | synthetic bug programs and corpora |
//!
//! # Quickstart
//!
//! ```
//! use res_debugger::prelude::*;
//!
//! // 1. A buggy program (normally: your application).
//! let program = mvm_isa::asm::assemble(
//!     r#"
//!     global divisor 8 = 3
//!     func main() {
//!     entry:
//!         addr r0, divisor
//!         load r1, [r0]
//!         sub r1, r1, 3
//!         store r1, [r0]
//!         jmp use_it
//!     use_it:
//!         load r2, [r0]
//!         divu r3, 100, r2
//!         halt
//!     }
//!     "#,
//! )
//! .unwrap();
//!
//! // 2. It crashes in production; the system captures a coredump.
//! let mut m = Machine::new(program.clone(), MachineConfig::default());
//! m.run();
//! let dump = Coredump::capture(&m);
//!
//! // 3. RES synthesizes an execution suffix from the dump alone...
//! let engine = ResEngine::new(&program, ResConfig::default());
//! let result = engine.synthesize(&dump);
//! let suffix = &result.suffixes[0];
//!
//! // 4. ...which replays deterministically into the same failure.
//! let report = replay_suffix(&program, &dump, suffix);
//! assert!(report.reproduced);
//! ```

pub use mvm_core as coredump;
pub use mvm_isa as isa;
pub use mvm_machine as machine;
pub use mvm_symbolic as symbolic;
pub use res_baselines as baselines;
pub use res_core as res;
pub use res_obs as obs;
pub use res_serve as serve;
pub use res_store as store;
pub use res_trace as trace;
pub use res_triage as triage;
pub use res_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use mvm_core::{Coredump, Minidump};
    pub use mvm_isa::{asm::assemble, Program, ProgramBuilder};
    pub use mvm_machine::{Machine, MachineConfig, Outcome, SchedPolicy};
    pub use res_core::{
        analyze_root_cause,
        hardware_verdict,
        replay_suffix,
        ExecutionSuffix,
        HwVerdict,
        ParallelReport,
        ResConfig,
        ResConfigBuilder,
        ResEngine,
        RootCause,
        StoreReport,
        SynthOptions,
        Verdict, //
    };
    pub use res_obs::{read_journal, Recorder};
    pub use res_store::SolverStore;
    pub use res_trace::{record_trace, replay_trace, verify_trace, TraceFile};
    pub use res_workloads::{build as build_workload, BugKind, WorkloadParams};
}
