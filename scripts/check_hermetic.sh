#!/usr/bin/env bash
# check_hermetic.sh — fail if any external (registry/git) dependency is
# reintroduced anywhere in the workspace.
#
# The hermetic-build policy (README.md, DESIGN.md) requires every
# dependency edge to be an in-repo `path = "..."` dependency so that the
# workspace builds and tests fully offline. This script is the
# enforcement point; `tests/hermetic.rs` runs it under `cargo test`.
#
# Checks:
#   1. No Cargo.toml dependency section entry without a `path` key
#      (entries with `workspace = true` are fine: they resolve through
#      [workspace.dependencies], which is itself checked).
#   2. Cargo.lock (if present) lists no package with a `source` field —
#      registry or git packages always carry one, path packages never do.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

fail=0

# --- 1. Every dependency entry in every manifest must be a path dep. ---
# Walk each manifest line by line; inside a dependency-ish section,
# any `name = ...` entry must mention `path =`, and any
# `[dependencies.name]`-style subtable must contain a `path =` line
# before the next section header.
while IFS= read -r manifest; do
    awk -v file="$manifest" '
        /^\[/ {
            # Entering a new section: flush pending subtable check.
            if (subtable != "" && !subtable_has_path) {
                printf "%s: dependency `%s` is not a path dependency\n", file, subtable
                bad = 1
            }
            subtable = ""
            in_deps = ($0 ~ /^\[(workspace\.)?(dependencies|dev-dependencies|build-dependencies)\]/)
            if ($0 ~ /^\[(workspace\.)?(dependencies|dev-dependencies|build-dependencies)\./) {
                subtable = $0
                sub(/^\[[^.]*\.?(dependencies|dev-dependencies|build-dependencies)\./, "", subtable)
                sub(/\]$/, "", subtable)
                subtable_has_path = 0
            }
            next
        }
        subtable != "" && /^[[:space:]]*(path|workspace)[[:space:]]*=/ { subtable_has_path = 1 }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            line = $0
            sub(/#.*/, "", line)
            if (line !~ /path[[:space:]]*=/ && line !~ /workspace[[:space:]]*=[[:space:]]*true/ && line !~ /^[[:space:]]*$/) {
                name = line
                sub(/[[:space:]]*=.*/, "", name)
                gsub(/[[:space:]]/, "", name)
                printf "%s: dependency `%s` is not a path dependency\n", file, name
                bad = 1
            }
        }
        END {
            if (subtable != "" && !subtable_has_path) {
                printf "%s: dependency `%s` is not a path dependency\n", file, subtable
                bad = 1
            }
            exit bad
        }
    ' "$manifest" || fail=1
done < <(find . -name Cargo.toml -not -path "./target/*" | sort)

# --- 2. Cargo.lock must contain only source-less (path) packages. ---
if [[ -f Cargo.lock ]]; then
    if grep -n '^source = ' Cargo.lock; then
        echo "Cargo.lock: found packages with an external source (above)"
        fail=1
    fi
fi

if [[ "$fail" -ne 0 ]]; then
    echo "hermetic check FAILED: external dependencies found" >&2
    exit 1
fi
echo "hermetic check OK: all dependencies are in-repo path dependencies"
