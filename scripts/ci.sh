#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, release build, every test
# suite, and the hermetic-dependency check. Run before sending a PR;
# everything here must pass with nothing but a Rust toolchain and no
# network access.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> hermetic dependency check"
"$repo_root/scripts/check_hermetic.sh"

echo "ci OK"
