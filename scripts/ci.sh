#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, release build, every test
# suite, and the hermetic-dependency check. Run before sending a PR;
# everything here must pass with nothing but a Rust toolchain and no
# network access.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel determinism gate (golden suffix fixture at 1, 2, 4 workers)"
# The sharded kernel's contract: any worker count synthesizes
# byte-identical suffixes. Run the golden fixture test under each
# worker count — the fixture file is the same, so any divergence is a
# byte-for-byte diff failure.
for workers in 1 2 4; do
    echo "    RES_WORKERS=$workers"
    RES_WORKERS=$workers cargo test -q --test suffix_golden \
        default_dfs_suffixes_match_pre_refactor_fixture
done

echo "==> cross-run determinism gate (golden suffix fixture, cold then warm store)"
# The persistent store's contract: a warm run absorbing a populated
# store synthesizes byte-identical suffixes to a cold run. Run the
# golden fixture test twice against one store file — the first run
# populates it, the second answers solver queries from it; both must
# match the very same cold golden fixture.
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
for pass in cold warm; do
    echo "    RES_CACHE_PATH ($pass)"
    RES_CACHE_PATH="$store_dir/ci.resstore" cargo test -q --test suffix_golden \
        default_dfs_suffixes_match_pre_refactor_fixture
done
test -s "$store_dir/ci.resstore" || { echo "store was never populated"; exit 1; }

echo "==> hermetic dependency check"
"$repo_root/scripts/check_hermetic.sh"

echo "ci OK"
