#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, release build, every test
# suite, and the hermetic-dependency check. Run before sending a PR;
# everything here must pass with nothing but a Rust toolchain and no
# network access.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel determinism gate (golden suffix fixture at 1, 2, 4 workers)"
# The sharded kernel's contract: any worker count synthesizes
# byte-identical suffixes. Run the golden fixture test under each
# worker count — the fixture file is the same, so any divergence is a
# byte-for-byte diff failure.
for workers in 1 2 4; do
    echo "    RES_WORKERS=$workers"
    RES_WORKERS=$workers cargo test -q --test suffix_golden \
        default_dfs_suffixes_match_pre_refactor_fixture
done

echo "==> cross-run determinism gate (golden suffix fixture, cold then warm store)"
# The persistent store's contract: a warm run absorbing a populated
# store synthesizes byte-identical suffixes to a cold run. Run the
# golden fixture test twice against one store file — the first run
# populates it, the second answers solver queries from it; both must
# match the very same cold golden fixture. Exercise both speculative
# modes against that one fixture: with subtree-verdict certificates
# consulted (the default) and with them off (RES_SPECULATIVE_YIELD=0,
# cache-only) — a verdict-pruned warm replay must not change a byte.
scratch_dir="$(mktemp -d)"
trap 'rm -rf "$scratch_dir"' EXIT
for yield in 1 0; do
    for pass in cold warm; do
        echo "    RES_CACHE_PATH ($pass, RES_SPECULATIVE_YIELD=$yield)"
        RES_SPECULATIVE_YIELD=$yield \
            RES_CACHE_PATH="$scratch_dir/ci-y$yield.resstore" \
            cargo test -q --test suffix_golden \
            default_dfs_suffixes_match_pre_refactor_fixture
    done
    test -s "$scratch_dir/ci-y$yield.resstore" || { echo "store was never populated"; exit 1; }
done
grep -q "^V " "$scratch_dir/ci-y1.resstore" \
    || { echo "verdict-enabled store carries no certificate records"; exit 1; }

echo "==> speculative-yield bench (BENCH_e3_speculative_yield.json)"
# The E3y extract: warm cache-only replay vs warm verdict-consulting
# replay at 1, 2, 4 workers. The harness exits non-zero unless the
# suffixes stay byte-identical, effective totals reconcile, and the
# certificates cut replayed nodes >= 2x at 4 workers.
RES_BENCH_OUT="$repo_root" \
    cargo run --release -q -p res-bench --bin harness -- e3y | tail -n 1
test -s "$repo_root/BENCH_e3_speculative_yield.json" \
    || { echo "bench artifact was never written"; exit 1; }

echo "==> triage daemon gate (serve/submit round trip, batch byte-identity)"
# Layer 1: the shipped binaries. Boot `res-serve` on an ephemeral port,
# round-trip one coredump through `res-cli submit`, and shut it down
# over the wire.
serve_dir="$scratch_dir/serve"
mkdir -p "$serve_dir"
cargo run --release -q --bin res-cli -- crash div-by-zero "$serve_dir/dump" > /dev/null
cargo run --release -q --bin res-serve -- --addr 127.0.0.1:0 \
    --store "$serve_dir/hot" --trace "$serve_dir/serve.jsonl" \
    > "$serve_dir/addr.txt" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q '^addr: ' "$serve_dir/addr.txt" 2>/dev/null && break
    sleep 0.1
done
serve_addr="$(sed -n 's/^addr: //p' "$serve_dir/addr.txt")"
test -n "$serve_addr" || { echo "daemon never printed its address"; exit 1; }
cargo run --release -q --bin res-cli -- submit "$serve_dir/dump" --addr "$serve_addr" \
    | grep -q "REPRODUCED" || { echo "submitted dump did not reproduce"; exit 1; }
# The live telemetry endpoint: the stats round trip must report the
# requests served so far and a populated triage latency histogram, and
# the per-endpoint quantile extract is a CI artifact.
stats_out="$(cargo run --release -q --bin res-cli -- stats --addr "$serve_addr")"
echo "$stats_out" | grep -Eq 'serve\.requests +[1-9]' \
    || { echo "stats endpoint reports no served requests"; exit 1; }
echo "$stats_out" | grep -Eq 'serve\.rtt\.triage_us +n=[1-9]' \
    || { echo "stats endpoint carries no triage latency samples"; exit 1; }
cargo run --release -q --bin res-cli -- stats --addr "$serve_addr" --latency-json \
    > "$repo_root/BENCH_serve_latency.json"
test -s "$repo_root/BENCH_serve_latency.json" \
    || { echo "latency artifact was never written"; exit 1; }
if grep -q '"triage":{"count":0,' "$repo_root/BENCH_serve_latency.json"; then
    echo "latency artifact has an empty triage histogram"; exit 1
fi
grep -q '"triage":{"count":' "$repo_root/BENCH_serve_latency.json" \
    || { echo "latency artifact missing the triage endpoint"; exit 1; }
cargo run --release -q --bin res-cli -- shutdown --addr "$serve_addr" > /dev/null
wait "$serve_pid"
grep -q "serve.completed" "$serve_dir/serve.jsonl" \
    || { echo "daemon journal missing serve gauges"; exit 1; }
# The journal reconciliation gate: every request in the daemon's
# journal must reconstruct as a fully-closed span tree rooted at its
# `serve.req` span (`res-cli journal --requests` exits non-zero on any
# broken request).
echo "    journal reconciles per-request span trees"
journal_out="$(cargo run --release -q --bin res-cli -- journal "$serve_dir/serve.jsonl" --requests)" \
    || { echo "journal requests did not reconcile"; exit 1; }
echo "$journal_out" | grep -Eq 'c[0-9]+\.[0-9]+ +triage +[0-9]+ +ok' \
    || { echo "journal carries no reconciled triage request"; exit 1; }
# Layer 2: the SRV throughput extract. Boots the daemon in-process,
# shards a >=50-dump generated corpus across concurrent client
# connections twice (cold, then warm hot store), and exits non-zero
# unless every answer is byte-identical to the sequential direct
# library run, the warm pass serves a nonzero hot-store hit rate, and
# automatic store compaction fired. Emits BENCH_serve_throughput.json
# plus the daemon's own journal.
RES_BENCH_OUT="$repo_root" \
    cargo run --release -q -p res-bench --bin harness -- srv | tail -n 1
test -s "$repo_root/BENCH_serve_throughput.json" \
    || { echo "serve bench artifact was never written"; exit 1; }
for needle in serve.queue.depth serve.hot.programs serve.hot.hit store.compact.auto; do
    grep -q "$needle" "$repo_root/BENCH_serve_journal.jsonl" \
        || { echo "daemon journal missing $needle"; exit 1; }
done

echo "==> traced determinism gate (golden suffix fixture with RES_TRACE on)"
# The observability contract: the recorder is strictly passive. Run the
# golden fixture test with journaling enabled — the fixture file is
# still the same, so tracing must not change a single synthesized byte —
# then parse and sanity-check the journal it left behind.
echo "    RES_TRACE (passivity)"
RES_TRACE="$scratch_dir/golden.jsonl" cargo test -q --test suffix_golden \
    default_dfs_suffixes_match_pre_refactor_fixture
test -s "$scratch_dir/golden.jsonl" || { echo "trace journal was never written"; exit 1; }
echo "    journal parses and reconstructs the run"
trace_out="$(cargo run --release -q --bin res-cli -- trace "$scratch_dir/golden.jsonl")"
echo "$trace_out" | grep -q "synthesize" || { echo "journal missing synthesize span"; exit 1; }
echo "$trace_out" | grep -q "kernel.nodes_expanded" || { echo "journal missing kernel counters"; exit 1; }

echo "==> replay-trace gate (record / replay / verify, both encodings)"
# The portable-trace contract: `record` writes byte-identical files at
# any worker count and in either encoding; `replay` reproduces the
# recorded failure from the file alone; `verify` against the repaired
# program FAILs with a point-of-first-divergence report. All four
# claims are exercised through the shipped binaries.
trace_dir="$scratch_dir/trace"
cargo run --release -q --bin res-cli -- crash div-by-zero "$trace_dir" --emit-fixed > /dev/null
echo "    record is byte-identical across worker counts and re-runs"
for workers in 1 4; do
    cargo run --release -q --bin res-cli -- record "$trace_dir" \
        --workers "$workers" --out "$trace_dir/w$workers.restrace" > /dev/null
    cargo run --release -q --bin res-cli -- record "$trace_dir" \
        --workers "$workers" --out "$trace_dir/w$workers.restrace.bin" > /dev/null
done
cmp "$trace_dir/w1.restrace" "$trace_dir/w4.restrace" \
    || { echo "JSON traces differ across worker counts"; exit 1; }
cmp "$trace_dir/w1.restrace.bin" "$trace_dir/w4.restrace.bin" \
    || { echo "binary traces differ across worker counts"; exit 1; }
echo "    JSON <-> binary carry the same trace"
inspect_json="$(cargo run --release -q --bin store-inspect -- "$trace_dir/w1.restrace" | grep -v -e '^replay trace:' -e 'encoding:' -e 'bytes:')"
inspect_bin="$(cargo run --release -q --bin store-inspect -- "$trace_dir/w1.restrace.bin" | grep -v -e '^replay trace:' -e 'encoding:' -e 'bytes:')"
[ "$inspect_json" = "$inspect_bin" ] \
    || { echo "encodings disagree about the trace contents"; exit 1; }
echo "    replay reproduces from the file alone"
for t in w1.restrace w1.restrace.bin; do
    cargo run --release -q --bin res-cli -- replay "$trace_dir" "$trace_dir/$t" \
        | grep -q "REPRODUCED" || { echo "$t did not reproduce"; exit 1; }
done
echo "    verify FAILs on the repaired program with a divergence report"
cp "$trace_dir/program.fixed.json" "$trace_dir/program.json"
for t in w1.restrace w1.restrace.bin; do
    if out="$(cargo run --release -q --bin res-cli -- verify "$trace_dir" "$trace_dir/$t")"; then
        echo "$t verified PASS against the repaired program"; exit 1
    fi
    echo "$out" | grep -q "FAIL: first divergence at event" \
        || { echo "$t FAIL report carries no divergence point"; exit 1; }
done

echo "==> corpus-scale smoke gate (seeded generator, E5c/E6c/E7c)"
# The buggy-program generator + parallel corpus harness: a small
# generated population (RES_GEN_SMOKE programs per experiment) must hold
# the same shapes as the full sweep, at a fixed small thread count so CI
# machines of any width exercise the sharded path identically. The full
# >=200-program sweep stays out of the hot path — run it explicitly with
#   cargo run --release -p res-bench --bin harness -- e5c e6c e7c
RES_GEN_SMOKE=8 RES_HARNESS_THREADS=2 \
    cargo run --release -q -p res-bench --bin harness -- e5c e6c e7c \
    | tail -n 1

echo "==> hermetic dependency check"
"$repo_root/scripts/check_hermetic.sh"

echo "ci OK"
